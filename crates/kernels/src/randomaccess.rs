//! HPCC RandomAccess (GUPS).
//!
//! The benchmark's pseudo-random stream is the 64-bit LFSR with
//! polynomial `x⁶³ + x² + x + 1` (`POLY = 7`); each value XOR-updates the
//! table slot addressed by its low bits. Because XOR is an involution,
//! applying the same update stream twice restores the table — which is
//! exactly how the official benchmark verifies itself, and how we do.

/// The HPCC LFSR feedback polynomial.
pub const POLY: u64 = 7;

/// Advance the LFSR by one step.
#[inline]
pub fn lfsr_step(x: u64) -> u64 {
    (x << 1) ^ (if (x as i64) < 0 { POLY } else { 0 })
}

/// The HPCC `HPCC_starts(n)`: the n-th element of the LFSR stream
/// starting from 1, computed in O(log n) by GF(2) transition squaring —
/// a direct port of the reference implementation.
pub fn starts(n: u64) -> u64 {
    if n == 0 {
        return 1;
    }
    // m2[i] = the state reached from basis bit i after 2 steps of the
    // previous power — i.e. the squared transition matrix's columns.
    let mut m2 = [0u64; 64];
    let mut temp = 1u64;
    for m in m2.iter_mut() {
        *m = temp;
        temp = lfsr_step(lfsr_step(temp));
    }
    let mut i: i64 = 62;
    while i >= 0 && (n >> i) & 1 == 0 {
        i -= 1;
    }
    let mut ran = 2u64;
    while i > 0 {
        temp = 0;
        for (j, &m) in m2.iter().enumerate() {
            if (ran >> j) & 1 == 1 {
                temp ^= m;
            }
        }
        ran = temp;
        i -= 1;
        if (n >> i) & 1 == 1 {
            ran = lfsr_step(ran);
        }
    }
    ran
}

/// Result of a GUPS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomAccessResult {
    /// Number of updates applied.
    pub updates: u64,
    /// Table slots that differ from the pristine table after
    /// re-application (0 for a correct sequential run).
    pub errors: u64,
}

/// Run `updates` table updates against a table of `2^log2_size` entries,
/// then verify by re-applying the same stream and counting mismatches
/// against the pristine table.
pub fn gups_run(log2_size: u32, updates: u64) -> RandomAccessResult {
    let size = 1usize << log2_size;
    let mask = (size - 1) as u64;
    let mut table: Vec<u64> = (0..size as u64).collect();

    let mut ran = starts(0).max(1);
    for _ in 0..updates {
        ran = lfsr_step(ran);
        table[(ran & mask) as usize] ^= ran;
    }
    // verification pass: XOR is self-inverse
    let mut ran = starts(0).max(1);
    for _ in 0..updates {
        ran = lfsr_step(ran);
        table[(ran & mask) as usize] ^= ran;
    }
    let errors = table
        .iter()
        .enumerate()
        .filter(|&(i, &v)| v != i as u64)
        .count() as u64;
    RandomAccessResult { updates, errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_has_long_period_prefix() {
        // no repeats within a modest window (full period is 2^64 - 1)
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = lfsr_step(x);
            assert!(seen.insert(x), "premature cycle at {x}");
        }
    }

    #[test]
    fn starts_zero_and_one() {
        assert_eq!(starts(0), 1);
        assert_eq!(starts(1), lfsr_step(1));
    }

    #[test]
    fn starts_matches_sequential_stream() {
        let mut x = 1u64;
        for n in 1..200u64 {
            x = lfsr_step(x);
            assert_eq!(starts(n), x, "starts({n})");
        }
    }

    #[test]
    fn starts_is_consistent_at_large_offsets() {
        // starts(n+1) must equal one step from starts(n), even far out
        for n in [1u64 << 20, 1 << 33, (1 << 40) + 12345] {
            assert_eq!(starts(n + 1), lfsr_step(starts(n)));
        }
    }

    #[test]
    fn gups_verifies_clean() {
        let r = gups_run(12, 40_000);
        assert_eq!(r.errors, 0);
        assert_eq!(r.updates, 40_000);
    }

    #[test]
    fn gups_updates_touch_most_of_a_small_table() {
        // sanity: the address stream is well spread
        let size = 1usize << 8;
        let mask = (size - 1) as u64;
        let mut hit = vec![false; size];
        let mut x = 1u64;
        for _ in 0..20_000 {
            x = lfsr_step(x);
            hit[(x & mask) as usize] = true;
        }
        let coverage = hit.iter().filter(|&&h| h).count();
        assert!(coverage > size * 95 / 100, "coverage {coverage}/{size}");
    }
}
