//! Parallel matrix transpose — PTRANS's local kernel.
//!
//! HPCC PTRANS computes `A ← Aᵀ + C` over a distributed matrix, stressing
//! bisection bandwidth; the node-local work is a blocked transpose, which
//! is what lives here (the distributed exchange is simulated in
//! `hpcsim-hpcc`).

use rayon::prelude::*;

/// Cache-blocking edge for the transpose.
const BLOCK: usize = 32;

/// Out-of-place transpose: `out[j][i] = a[i][j]` for an m×n row-major
/// input (out is n×m).
pub fn transpose(a: &[f64], m: usize, n: usize, out: &mut [f64]) {
    assert_eq!(a.len(), m * n);
    assert_eq!(out.len(), m * n);
    // Parallelize over column blocks of the output (row blocks of input).
    out.par_chunks_mut(BLOCK * m).enumerate().for_each(|(bj, out_panel)| {
        let j0 = bj * BLOCK;
        let jb = (n - j0).min(BLOCK);
        for i0 in (0..m).step_by(BLOCK) {
            let ib = (m - i0).min(BLOCK);
            for j in 0..jb {
                for i in 0..ib {
                    out_panel[j * m + (i0 + i)] = a[(i0 + i) * n + (j0 + j)];
                }
            }
        }
    });
}

/// `a ← aᵀ + c` for square n×n matrices (the PTRANS update).
pub fn transpose_add(a: &mut [f64], c: &[f64], n: usize) {
    assert_eq!(a.len(), n * n);
    assert_eq!(c.len(), n * n);
    let mut t = vec![0.0; n * n];
    transpose(a, n, n, &mut t);
    a.par_iter_mut()
        .zip(t.par_iter().zip(c.par_iter()))
        .for_each(|(ai, (&ti, &ci))| *ai = ti + ci);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect()
    }

    #[test]
    fn transpose_square() {
        let n = 70; // crosses block boundaries
        let a = random(n * n, 1);
        let mut t = vec![0.0; n * n];
        transpose(&a, n, n, &mut t);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(t[j * n + i], a[i * n + j]);
            }
        }
    }

    #[test]
    fn transpose_rectangular() {
        let (m, n) = (45, 90);
        let a = random(m * n, 2);
        let mut t = vec![0.0; m * n];
        transpose(&a, m, n, &mut t);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(t[j * m + i], a[i * n + j]);
            }
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let (m, n) = (33, 65);
        let a = random(m * n, 3);
        let mut t = vec![0.0; m * n];
        let mut back = vec![0.0; m * n];
        transpose(&a, m, n, &mut t);
        transpose(&t, n, m, &mut back);
        assert_eq!(back, a);
    }

    #[test]
    fn transpose_add_matches_definition() {
        let n = 50;
        let a0 = random(n * n, 4);
        let c = random(n * n, 5);
        let mut a = a0.clone();
        transpose_add(&mut a, &c, n);
        for i in 0..n {
            for j in 0..n {
                let expect = a0[j * n + i] + c[i * n + j];
                assert!((a[i * n + j] - expect).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn symmetric_matrix_fixed_by_transpose() {
        let n = 20;
        let r = random(n * n, 6);
        // build a symmetric matrix
        let mut s = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                s[i * n + j] = r[i.min(j) * n + i.max(j)];
            }
        }
        let mut t = vec![0.0; n * n];
        transpose(&s, n, n, &mut t);
        assert_eq!(t, s);
    }

    #[test]
    fn single_row_and_column() {
        let a = vec![1.0, 2.0, 3.0];
        let mut t = vec![0.0; 3];
        transpose(&a, 1, 3, &mut t);
        assert_eq!(t, a); // a 1×n transposes to n×1 with same layout
        let mut back = vec![0.0; 3];
        transpose(&t, 3, 1, &mut back);
        assert_eq!(back, a);
    }
}
