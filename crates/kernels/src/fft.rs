//! Complex radix-2 FFT.
//!
//! Iterative Cooley–Tukey with bit-reversal permutation, the algorithm of
//! HPCC's stock (non-vendor) FFT kernel — the paper explicitly used the
//! stock implementation rather than ESSL/ACML's, and so do we.

/// A complex number over `f64`. Minimal on purpose (no external crates);
/// the inherent `add`/`sub`/`mul` names mirror the operators they stand
/// in for.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

#[allow(clippy::should_implement_trait)] // inherent add/sub/mul by design
impl Complex {
    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// 0 + 0i.
    pub fn zero() -> Self {
        Complex::default()
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex multiplication.
    pub fn mul(self, o: Complex) -> Complex {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }

    /// Complex addition.
    pub fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }

    /// Complex subtraction.
    pub fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            data.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
}

fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half].mul(w);
                chunk[i] = u.add(v);
                chunk[i + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= scale;
            x.im *= scale;
        }
    }
}

/// In-place forward FFT. Length must be a power of two.
pub fn fft_forward(data: &mut [Complex]) {
    fft_in_place(data, false);
}

/// In-place inverse FFT (normalized by 1/n).
pub fn fft_inverse(data: &mut [Complex]) {
    fft_in_place(data, true);
}

/// O(n²) reference DFT — the oracle for tests.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::zero();
            for (j, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc.add(x.mul(Complex::cis(ang)));
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x.sub(*y).norm_sq().sqrt()).fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 16, 64, 256] {
            let sig = random_signal(n, n as u64);
            let expect = dft_naive(&sig);
            let mut got = sig.clone();
            fft_forward(&mut got);
            assert!(max_err(&got, &expect) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let sig = random_signal(1024, 9);
        let mut work = sig.clone();
        fft_forward(&mut work);
        fft_inverse(&mut work);
        assert!(max_err(&work, &sig) < 1e-10);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut sig = vec![Complex::zero(); 128];
        sig[0] = Complex::new(1.0, 0.0);
        fft_forward(&mut sig);
        for x in &sig {
            assert!((x.re - 1.0).abs() < 1e-12 && x.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let sig = random_signal(512, 3);
        let time_energy: f64 = sig.iter().map(|x| x.norm_sq()).sum();
        let mut spec = sig.clone();
        fft_forward(&mut spec);
        let freq_energy: f64 = spec.iter().map(|x| x.norm_sq()).sum::<f64>() / 512.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let a = random_signal(64, 4);
        let b = random_signal(64, 5);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| x.add(*y)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        fft_forward(&mut fa);
        fft_forward(&mut fb);
        fft_forward(&mut fsum);
        let expect: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| x.add(*y)).collect();
        assert!(max_err(&fsum, &expect) < 1e-10);
    }

    #[test]
    fn trivial_lengths() {
        let mut empty: Vec<Complex> = vec![];
        fft_forward(&mut empty);
        let mut one = vec![Complex::new(3.0, -2.0)];
        fft_forward(&mut one);
        assert_eq!(one[0], Complex::new(3.0, -2.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut sig = random_signal(12, 1);
        fft_forward(&mut sig);
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let k = 5;
        let mut sig: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64))
            .collect();
        fft_forward(&mut sig);
        for (i, x) in sig.iter().enumerate() {
            let mag = x.norm_sq().sqrt();
            if i == k {
                assert!((mag - n as f64).abs() < 1e-9);
            } else {
                assert!(mag < 1e-9, "leak at bin {i}: {mag}");
            }
        }
    }
}
