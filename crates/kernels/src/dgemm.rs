//! Dense matrix multiply.
//!
//! `C ← α·A·B + β·C` for row-major `f64` matrices, blocked for cache and
//! parallelized over row panels with Rayon. This is the flop carrier of
//! HPL's trailing update and the DGEMM entry of HPCC Table 2.

use rayon::prelude::*;

/// Cache block edge. 64×64 f64 panels (32 KiB) fit comfortably in L1/L2
/// on everything we run on.
const BLOCK: usize = 64;

/// Naive triple loop — the oracle for tests. `a` is m×k, `b` is k×n,
/// `c` is m×n, all row-major.
#[allow(clippy::too_many_arguments)] // the BLAS dgemm signature
pub fn dgemm_naive(alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Blocked, parallel `C ← α·A·B + β·C`. Dimensions as in
/// [`dgemm_naive`].
#[allow(clippy::too_many_arguments)] // the BLAS dgemm signature
pub fn dgemm(alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
    if m == 0 || n == 0 {
        return;
    }
    // β-scale first so the k-blocked accumulation can use fused updates.
    if beta != 1.0 {
        c.iter_mut().for_each(|x| *x *= beta);
    }
    if k == 0 {
        return;
    }
    // Parallelize over row panels of C: each worker owns disjoint rows.
    c.par_chunks_mut(BLOCK * n).enumerate().for_each(|(bi, c_panel)| {
        let i0 = bi * BLOCK;
        let rows = c_panel.len() / n;
        let mut btile = [0.0f64; BLOCK * BLOCK];
        for l0 in (0..k).step_by(BLOCK) {
            let lb = BLOCK.min(k - l0);
            for j0 in (0..n).step_by(BLOCK) {
                let jb = BLOCK.min(n - j0);
                // pack the B tile once per (l0, j0); reused for all rows
                for l in 0..lb {
                    let src = &b[(l0 + l) * n + j0..(l0 + l) * n + j0 + jb];
                    btile[l * jb..(l + 1) * jb].copy_from_slice(src);
                }
                for i in 0..rows {
                    let arow = &a[(i0 + i) * k + l0..(i0 + i) * k + l0 + lb];
                    let crow = &mut c_panel[i * n + j0..i * n + j0 + jb];
                    for (l, &aval) in arow.iter().enumerate() {
                        let aval = alpha * aval;
                        let brow = &btile[l * jb..(l + 1) * jb];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += aval * bv;
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_square() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 97; // deliberately not a multiple of BLOCK
        let a = random_matrix(&mut rng, n * n);
        let b = random_matrix(&mut rng, n * n);
        let c0 = random_matrix(&mut rng, n * n);
        let mut c_fast = c0.clone();
        let mut c_ref = c0;
        dgemm(1.5, &a, &b, 0.5, &mut c_fast, n, n, n);
        dgemm_naive(1.5, &a, &b, 0.5, &mut c_ref, n, n, n);
        assert_close(&c_fast, &c_ref, 1e-10);
    }

    #[test]
    fn matches_naive_rectangular() {
        let mut rng = StdRng::seed_from_u64(2);
        let (m, n, k) = (130, 65, 33);
        let a = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let mut c_fast = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        dgemm(1.0, &a, &b, 0.0, &mut c_fast, m, n, k);
        dgemm_naive(1.0, &a, &b, 0.0, &mut c_ref, m, n, k);
        assert_close(&c_fast, &c_ref, 1e-10);
    }

    #[test]
    fn identity_is_neutral() {
        let n = 64;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, n * n);
        let mut c = vec![0.0; n * n];
        dgemm(1.0, &a, &eye, 0.0, &mut c, n, n, n);
        assert_close(&c, &a, 1e-12);
    }

    #[test]
    fn beta_scaling_only() {
        // k = 0: C ← β·C with empty product
        let mut c = vec![2.0; 12];
        dgemm(1.0, &[], &[], 0.5, &mut c, 3, 4, 0);
        assert!(c.iter().all(|&x| (x - 1.0).abs() < 1e-15));
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut c: Vec<f64> = vec![];
        dgemm(1.0, &[], &[], 0.0, &mut c, 0, 0, 0);
        dgemm(1.0, &[], &[], 0.0, &mut c, 0, 5, 0);
    }

    #[test]
    fn accumulates_with_beta_one() {
        let n = 16;
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(&mut rng, n * n);
        let b = random_matrix(&mut rng, n * n);
        let mut c = vec![1.0; n * n];
        let mut expect = vec![1.0; n * n];
        dgemm(2.0, &a, &b, 1.0, &mut c, n, n, n);
        dgemm_naive(2.0, &a, &b, 1.0, &mut expect, n, n, n);
        assert_close(&c, &expect, 1e-10);
    }

    #[test]
    #[should_panic(expected = "A must be")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0; 4];
        dgemm(1.0, &[1.0; 3], &[1.0; 4], 0.0, &mut c, 2, 2, 2);
    }
}
