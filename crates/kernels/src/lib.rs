//! # hpcsim-kernels
//!
//! Real, runnable implementations of the computational kernels behind the
//! paper's benchmarks — not models, actual numerics:
//!
//! * [`dgemm`] — blocked, Rayon-parallel dense matrix multiply.
//! * [`stream`] — the four STREAM kernels (copy/scale/add/triad).
//! * [`fft`] — iterative radix-2 complex FFT with inverse.
//! * [`lu`] — blocked LU factorization with partial pivoting, solve, and
//!   the HPL-style scaled residual check (this is the mathematical core
//!   of both HPCC HPL and the TOP500 run in §II.C).
//! * [`ptrans`] — blocked parallel matrix transpose (HPCC PTRANS's local
//!   kernel).
//! * [`randomaccess`] — the HPCC RandomAccess (GUPS) LFSR update stream
//!   with XOR self-verification.
//!
//! These serve three purposes in the reproduction: they validate that the
//! benchmark *specifications* we simulate are implemented faithfully (the
//! property tests here are the ground truth for the simulator's workload
//! descriptors), they give the Criterion benches something real to
//! measure, and they make the crate useful standalone.

pub mod dgemm;
pub mod fft;
pub mod lu;
pub mod ptrans;
pub mod randomaccess;
pub mod stream;

pub use dgemm::{dgemm, dgemm_naive};
pub use fft::{fft_forward, fft_inverse, Complex};
pub use lu::{lu_factor, lu_solve, residual_check, LuFactors};
pub use ptrans::{transpose, transpose_add};
pub use randomaccess::{gups_run, starts, RandomAccessResult, POLY};
pub use stream::{stream_add, stream_copy, stream_scale, stream_triad};
