//! Blocked LU factorization with partial pivoting and the HPL residual.
//!
//! This is the mathematics under both the HPCC HPL test (Fig 1a) and the
//! TOP500 run of §II.C: factor a dense system, solve, and accept the
//! answer when the scaled residual
//! `‖Ax − b‖∞ / (ε · (‖A‖∞‖x‖∞ + ‖b‖∞) · n)` is O(1).
//!
//! Right-looking blocked algorithm: factor a panel (unblocked, partial
//! pivoting), apply its row swaps to the rest, triangular-solve the block
//! row, then rank-k update the trailing matrix via [`crate::dgemm`] —
//! which is where >90% of the flops go, exactly as on the real machines.

use crate::dgemm::dgemm;

/// Panel width for the blocked factorization.
const NB: usize = 64;

/// The result of [`lu_factor`]: `A = P·L·U` packed in place.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// n×n row-major storage holding L (unit lower, below diagonal) and U
    /// (upper, on/above diagonal).
    pub lu: Vec<f64>,
    /// Pivot row chosen at each elimination step (`ipiv[k]` ≥ `k`).
    pub ipiv: Vec<usize>,
    /// Matrix order.
    pub n: usize,
}

/// Factor the row-major n×n matrix `a` as `P·L·U`. Returns `None` when a
/// zero pivot makes the matrix numerically singular.
pub fn lu_factor(mut a: Vec<f64>, n: usize) -> Option<LuFactors> {
    assert_eq!(a.len(), n * n);
    let mut ipiv = vec![0usize; n];

    let mut k0 = 0usize;
    while k0 < n {
        let kb = NB.min(n - k0);
        // --- unblocked panel factorization over columns k0..k0+kb
        for k in k0..k0 + kb {
            // pivot search in column k, rows k..n
            let mut piv = k;
            let mut best = a[k * n + k].abs();
            for r in (k + 1)..n {
                let v = a[r * n + k].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best == 0.0 {
                return None;
            }
            ipiv[k] = piv;
            if piv != k {
                for c in 0..n {
                    a.swap(k * n + c, piv * n + c);
                }
            }
            let pivot = a[k * n + k];
            // scale multipliers and update the rest of the PANEL only
            // (columns k+1 .. k0+kb); trailing columns are updated in the
            // blocked step below.
            for r in (k + 1)..n {
                let m = a[r * n + k] / pivot;
                a[r * n + k] = m;
                for c in (k + 1)..(k0 + kb) {
                    a[r * n + c] -= m * a[k * n + c];
                }
            }
        }
        let trail = k0 + kb;
        if trail < n {
            // --- U12 = L11⁻¹ · A12  (unit lower triangular solve)
            for k in k0..trail {
                for r in (k + 1)..trail {
                    let m = a[r * n + k];
                    if m != 0.0 {
                        for c in trail..n {
                            a[r * n + c] -= m * a[k * n + c];
                        }
                    }
                }
            }
            // --- A22 -= L21 · U12  (the DGEMM flop carrier)
            let m_rows = n - trail;
            let cols = n - trail;
            let mut l21 = vec![0.0; m_rows * kb];
            let mut u12 = vec![0.0; kb * cols];
            for r in 0..m_rows {
                for c in 0..kb {
                    l21[r * kb + c] = a[(trail + r) * n + (k0 + c)];
                }
            }
            for r in 0..kb {
                for c in 0..cols {
                    u12[r * cols + c] = a[(k0 + r) * n + (trail + c)];
                }
            }
            let mut a22 = vec![0.0; m_rows * cols];
            for r in 0..m_rows {
                for c in 0..cols {
                    a22[r * cols + c] = a[(trail + r) * n + (trail + c)];
                }
            }
            dgemm(-1.0, &l21, &u12, 1.0, &mut a22, m_rows, cols, kb);
            for r in 0..m_rows {
                for c in 0..cols {
                    a[(trail + r) * n + (trail + c)] = a22[r * cols + c];
                }
            }
        }
        k0 += kb;
    }
    Some(LuFactors { lu: a, ipiv, n })
}

/// Solve `A·x = b` given the factorization.
pub fn lu_solve(f: &LuFactors, b: &[f64]) -> Vec<f64> {
    let n = f.n;
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();
    // apply pivots
    for k in 0..n {
        let p = f.ipiv[k];
        if p != k {
            x.swap(k, p);
        }
    }
    // forward: L·y = P·b (unit diagonal)
    for i in 0..n {
        let mut acc = x[i];
        for (xj, lij) in x[..i].iter().zip(&f.lu[i * n..i * n + i]) {
            acc -= lij * xj;
        }
        x[i] = acc;
    }
    // backward: U·x = y
    for i in (0..n).rev() {
        let mut acc = x[i];
        for (xj, uij) in x[i + 1..n].iter().zip(&f.lu[i * n + i + 1..i * n + n]) {
            acc -= uij * xj;
        }
        x[i] = acc / f.lu[i * n + i];
    }
    x
}

/// The HPL scaled residual: `‖Ax − b‖∞ / (ε·(‖A‖∞·‖x‖∞ + ‖b‖∞)·n)`.
/// HPL accepts a run when this is below ~16.
pub fn residual_check(a: &[f64], x: &[f64], b: &[f64], n: usize) -> f64 {
    assert_eq!(a.len(), n * n);
    let mut r_inf = 0.0f64;
    for i in 0..n {
        let mut ax = 0.0;
        for j in 0..n {
            ax += a[i * n + j] * x[j];
        }
        r_inf = r_inf.max((ax - b[i]).abs());
    }
    let a_inf = (0..n)
        .map(|i| a[i * n..(i + 1) * n].iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max);
    let x_inf = x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let b_inf = b.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let denom = f64::EPSILON * (a_inf * x_inf + b_inf) * n as f64;
    if denom == 0.0 {
        return 0.0;
    }
    r_inf / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_system(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (a, b)
    }

    #[test]
    fn solves_small_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let f = lu_factor(a.clone(), 2).unwrap();
        let x = lu_solve(&f, &[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn hpl_residual_passes_at_various_sizes() {
        for (n, seed) in [(10usize, 1u64), (64, 2), (100, 3), (200, 4), (301, 5)] {
            let (a, b) = random_system(n, seed);
            let f = lu_factor(a.clone(), n).expect("nonsingular");
            let x = lu_solve(&f, &b);
            let r = residual_check(&a, &x, &b, n);
            assert!(r < 16.0, "n={n}: scaled residual {r}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // A[0][0] = 0 forces an immediate row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let f = lu_factor(a.clone(), 2).unwrap();
        let x = lu_solve(&f, &[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = vec![1.0, 2.0, 2.0, 4.0]; // rank 1
        assert!(lu_factor(a, 2).is_none());
    }

    #[test]
    fn identity_factors_to_itself() {
        let n = 50;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let f = lu_factor(a, n).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = lu_solve(&f, &b);
        for (i, xi) in x.iter().enumerate() {
            assert!((xi - i as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonally_dominant_is_stable() {
        let n = 128;
        let mut rng = StdRng::seed_from_u64(7);
        let mut a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for i in 0..n {
            a[i * n + i] += n as f64; // strong diagonal
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let f = lu_factor(a.clone(), n).unwrap();
        let x = lu_solve(&f, &b);
        assert!(residual_check(&a, &x, &b, n) < 1.0);
    }

    #[test]
    fn blocked_crosses_panel_boundaries() {
        // n chosen to exercise panels of NB and a ragged final panel
        let n = super::NB + 17;
        let (a, b) = random_system(n, 11);
        let f = lu_factor(a.clone(), n).unwrap();
        let x = lu_solve(&f, &b);
        assert!(residual_check(&a, &x, &b, n) < 16.0);
    }
}
