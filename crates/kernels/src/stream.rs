//! The STREAM kernels.
//!
//! McCalpin's four memory-bandwidth probes, exactly as HPCC runs them.
//! Each returns the bytes moved (per the STREAM counting convention, which
//! excludes write-allocate traffic) so callers can compute MB/s.

use rayon::prelude::*;

/// `c[i] = a[i]`. Returns bytes moved (16 per element).
pub fn stream_copy(a: &[f64], c: &mut [f64]) -> u64 {
    assert_eq!(a.len(), c.len());
    c.par_iter_mut().zip(a.par_iter()).for_each(|(ci, &ai)| *ci = ai);
    16 * a.len() as u64
}

/// `b[i] = q·c[i]`. Returns bytes moved (16 per element).
pub fn stream_scale(q: f64, c: &[f64], b: &mut [f64]) -> u64 {
    assert_eq!(c.len(), b.len());
    b.par_iter_mut().zip(c.par_iter()).for_each(|(bi, &ci)| *bi = q * ci);
    16 * c.len() as u64
}

/// `c[i] = a[i] + b[i]`. Returns bytes moved (24 per element).
pub fn stream_add(a: &[f64], b: &[f64], c: &mut [f64]) -> u64 {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    c.par_iter_mut()
        .zip(a.par_iter().zip(b.par_iter()))
        .for_each(|(ci, (&ai, &bi))| *ci = ai + bi);
    24 * a.len() as u64
}

/// `a[i] = b[i] + q·c[i]`. Returns bytes moved (24 per element).
pub fn stream_triad(q: f64, b: &[f64], c: &[f64], a: &mut [f64]) -> u64 {
    assert_eq!(b.len(), c.len());
    assert_eq!(b.len(), a.len());
    a.par_iter_mut()
        .zip(b.par_iter().zip(c.par_iter()))
        .for_each(|(ai, (&bi, &ci))| *ai = bi + q * ci);
    24 * b.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_copies() {
        let a: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let mut c = vec![0.0; 1000];
        let bytes = stream_copy(&a, &mut c);
        assert_eq!(c, a);
        assert_eq!(bytes, 16_000);
    }

    #[test]
    fn scale_scales() {
        let c: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut b = vec![0.0; 100];
        stream_scale(3.0, &c, &mut b);
        assert!(b.iter().enumerate().all(|(i, &x)| x == 3.0 * i as f64));
    }

    #[test]
    fn add_adds() {
        let a = vec![1.0; 64];
        let b = vec![2.0; 64];
        let mut c = vec![0.0; 64];
        let bytes = stream_add(&a, &b, &mut c);
        assert!(c.iter().all(|&x| x == 3.0));
        assert_eq!(bytes, 24 * 64);
    }

    #[test]
    fn triad_fuses() {
        let b = vec![1.0; 64];
        let c = vec![2.0; 64];
        let mut a = vec![0.0; 64];
        stream_triad(0.5, &b, &c, &mut a);
        assert!(a.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn empty_vectors_are_fine() {
        let mut out: Vec<f64> = vec![];
        assert_eq!(stream_copy(&[], &mut out), 0);
        assert_eq!(stream_triad(2.0, &[], &[], &mut out), 0);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut c = vec![0.0; 3];
        stream_copy(&[1.0; 4], &mut c);
    }
}
