//! # hpcsim-net
//!
//! Network performance models for the simulated machines.
//!
//! * [`p2p`] — point-to-point message timing: dimension-ordered torus
//!   routes with per-link and per-endpoint contention tracking
//!   ([`p2p::FlowTracker`]), shared-memory fast paths for on-node peers,
//!   and the LogGP-style endpoint overheads from the machine spec.
//! * [`collectives`] — closed-form models of MPI collective operations:
//!   the BlueGene hardware tree (broadcast / reduce / allreduce at
//!   near-constant latency, the paper's Figure 3 story) and the software
//!   algorithms (binomial, recursive halving/doubling, pairwise exchange)
//!   that the Cray XT — and BG/P for torus-only operations — must use.
//!
//! The split of responsibilities with `hpcsim-mpi`: this crate answers
//! "how long does the wire take"; the MPI crate owns matching semantics,
//! protocol state (eager/rendezvous), and CPU overheads.

pub mod collectives;
pub mod p2p;

pub use collectives::{CollectiveModel, CollectiveOp, DType};
pub use p2p::{FlowHandle, FlowTracker, P2pModel, RetransmitPolicy};
