//! Closed-form collective-operation models.
//!
//! Two regimes, exactly as in the paper's Figure 3:
//!
//! * **BlueGene hardware tree** — Barrier rides the global-interrupt
//!   network (microsecond-flat at any scale); Bcast/Reduce/Allreduce
//!   stream through the dedicated collective tree at near-constant
//!   latency. The tree ALU operates on integers; *double-precision*
//!   reductions use the well-known two-pass integer scheme and stay on
//!   the tree, while *single-precision* reductions fall back to a
//!   software algorithm on the torus — reproducing the paper's finding of
//!   "a substantial performance benefit to using double precision over
//!   single precision on the BG/P but not the Cray XT".
//! * **Software algorithms** — binomial trees for short vectors,
//!   Rabenseifner recursive-halving/doubling for long reductions,
//!   scatter+allgather broadcast, and pairwise-exchange Alltoall bounded
//!   by both endpoint injection and torus bisection. This is all the Cray
//!   XT has, and what BG/P uses for operations the tree cannot offload.

use hpcsim_engine::SimTime;
use hpcsim_machine::MachineSpec;
use hpcsim_topo::{alloc_torus_dims, CollectiveTree, Torus3D};
use serde::{Deserialize, Serialize};

/// Element type of a reduction — selects the BG/P tree fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit float: software path on BlueGene (tree ALU is integer-only
    /// and the two-pass trick needs the double format).
    F32,
    /// 64-bit float: tree-offloadable on BlueGene.
    F64,
    /// Integers: natively supported by the tree ALU.
    Int,
}

/// A collective operation over a communicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveOp {
    /// Synchronization only.
    Barrier,
    /// One-to-all broadcast of `bytes`.
    Bcast {
        /// Payload size.
        bytes: u64,
    },
    /// All-to-one reduction of `bytes`.
    Reduce {
        /// Vector size in bytes.
        bytes: u64,
        /// Element type.
        dtype: DType,
    },
    /// Reduction + broadcast of `bytes`.
    Allreduce {
        /// Vector size in bytes.
        bytes: u64,
        /// Element type.
        dtype: DType,
    },
    /// Each rank contributes `bytes_per_rank`; all receive everything.
    Allgather {
        /// Contribution per rank.
        bytes_per_rank: u64,
    },
    /// Each rank sends `bytes_per_pair` to every other rank.
    Alltoall {
        /// Per-destination payload.
        bytes_per_pair: u64,
    },
}

/// Collective timing model for one machine + job size.
#[derive(Debug, Clone)]
pub struct CollectiveModel {
    ranks: usize,
    /// Endpoint software overhead for one message (send + recv side).
    o2: SimTime,
    /// Mean torus path latency between job nodes.
    path_latency: SimTime,
    /// Point-to-point effective bandwidth (link vs injection bound).
    p2p_bw: f64,
    /// Aggregate one-direction bisection bandwidth of the job partition.
    bisection_bw: f64,
    /// One-direction injection bandwidth of a node.
    inj_bw: f64,
    /// Per-core streaming bandwidth (reduction arithmetic bound).
    core_bw: f64,
    /// Hardware tree, if the machine has one.
    tree: Option<TreeParams>,
}

#[derive(Debug, Clone)]
struct TreeParams {
    depth: usize,
    /// Software cost to enter/exit the tree hardware.
    overhead: SimTime,
    /// Per-tree-hop forwarding latency.
    per_hop: SimTime,
    /// Streaming payload rate for one-way operations (bcast/reduce).
    stream_bw: f64,
    /// Streaming rate for allreduce (up+down pipelined, slightly lower).
    allreduce_bw: f64,
    /// Barrier on the global-interrupt network.
    barrier_base: SimTime,
    barrier_per_level: SimTime,
}

impl CollectiveModel {
    /// Model for `ranks` MPI tasks at `tasks_per_node` on `machine`,
    /// assuming a compact partition.
    pub fn new(machine: &MachineSpec, ranks: usize, tasks_per_node: usize) -> Self {
        Self::with_hop_scale(machine, ranks, tasks_per_node, 1.0)
    }

    /// As [`CollectiveModel::new`], with mean path lengths scaled by
    /// `hop_scale` (> 1 models fragmented placement on the XT).
    pub fn with_hop_scale(
        machine: &MachineSpec,
        ranks: usize,
        tasks_per_node: usize,
        hop_scale: f64,
    ) -> Self {
        let ranks = ranks.max(1);
        let tpn = tasks_per_node.max(1);
        let nodes = ranks.div_ceil(tpn).max(1);
        let torus = Torus3D::new(alloc_torus_dims(nodes));
        let mean_hops = torus.mean_hops() * hop_scale;
        let path_latency = machine.nic.per_hop.scale(mean_hops);
        let p2p_bw = machine.nic.torus_link_bw.min(machine.nic.injection_bw / 2.0);
        let bisection_bw = torus.bisection_links() as f64 * machine.nic.torus_link_bw;
        let tree = machine.nic.tree_bw.map(|bw| {
            let t = CollectiveTree::bluegene(nodes);
            TreeParams {
                depth: t.depth(),
                overhead: SimTime::from_us_f64(1.8),
                per_hop: SimTime::from_ns(250),
                stream_bw: bw,
                allreduce_bw: bw * 0.7,
                barrier_base: SimTime::from_ns(700),
                barrier_per_level: SimTime::from_ns(25),
            }
        });
        CollectiveModel {
            ranks,
            o2: machine.nic.o_send + machine.nic.o_recv,
            path_latency,
            p2p_bw,
            bisection_bw,
            inj_bw: machine.nic.injection_bw / 2.0,
            core_bw: machine.core.mem_bw_core,
            tree,
        }
    }

    /// Number of participating ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    fn stages(&self) -> u64 {
        (self.ranks.max(1) as f64).log2().ceil() as u64
    }

    /// Software binomial/Rabenseifner stage latency.
    fn stage_latency(&self) -> SimTime {
        self.o2 + self.path_latency
    }

    /// Predicted duration of `op`.
    pub fn time(&self, op: CollectiveOp) -> SimTime {
        if self.ranks <= 1 {
            return SimTime::from_ns(100);
        }
        match op {
            CollectiveOp::Barrier => self.barrier(),
            CollectiveOp::Bcast { bytes } => self.bcast(bytes),
            CollectiveOp::Reduce { bytes, dtype } => self.reduce(bytes, dtype, false),
            CollectiveOp::Allreduce { bytes, dtype } => self.reduce(bytes, dtype, true),
            CollectiveOp::Allgather { bytes_per_rank } => self.allgather(bytes_per_rank),
            CollectiveOp::Alltoall { bytes_per_pair } => self.alltoall(bytes_per_pair),
        }
    }

    fn barrier(&self) -> SimTime {
        if let Some(t) = &self.tree {
            // global interrupt network: flat microsecond-scale
            t.barrier_base + t.barrier_per_level * t.depth as u64
        } else {
            self.stage_latency() * self.stages()
        }
    }

    fn bcast(&self, bytes: u64) -> SimTime {
        if let Some(t) = &self.tree {
            t.overhead
                + t.per_hop * t.depth as u64
                + SimTime::from_secs(bytes as f64 / t.stream_bw)
        } else {
            self.software_bcast(bytes)
        }
    }

    fn software_bcast(&self, bytes: u64) -> SimTime {
        let stages = self.stages();
        let binomial =
            (self.stage_latency() + SimTime::from_secs(bytes as f64 / self.p2p_bw)) * stages;
        let p = self.ranks as f64;
        let scatter_allgather = self.stage_latency() * (2 * stages)
            + SimTime::from_secs(2.0 * bytes as f64 * (p - 1.0) / p / self.p2p_bw);
        binomial.min(scatter_allgather)
    }

    fn reduce(&self, bytes: u64, dtype: DType, all: bool) -> SimTime {
        if let Some(t) = &self.tree {
            if matches!(dtype, DType::F64 | DType::Int) {
                let hops = if all { 2 * t.depth } else { t.depth };
                let bw = if all { t.allreduce_bw } else { t.stream_bw };
                return t.overhead
                    + t.per_hop * hops as u64
                    + SimTime::from_secs(bytes as f64 / bw);
            }
            // single precision: software on the torus
        }
        self.software_reduce(bytes, all)
    }

    fn software_reduce(&self, bytes: u64, all: bool) -> SimTime {
        let stages = self.stages();
        let p = self.ranks as f64;
        let lat_stages = if all { 2 * stages } else { stages };
        // Rabenseifner: recursive halving reduce-scatter + doubling
        // allgather; each moves (p-1)/p of the vector.
        let vol_factor = if all { 2.0 } else { 1.0 };
        let wire = vol_factor * bytes as f64 * (p - 1.0) / p / self.p2p_bw;
        // local reduction arithmetic is memory-streaming bound
        let arith = 2.0 * bytes as f64 / self.core_bw;
        self.stage_latency() * lat_stages + SimTime::from_secs(wire + arith)
    }

    fn allgather(&self, bytes_per_rank: u64) -> SimTime {
        let stages = self.stages();
        let p = self.ranks as f64;
        let total = bytes_per_rank as f64 * p;
        self.stage_latency() * stages
            + SimTime::from_secs(total * (p - 1.0) / p / self.p2p_bw)
    }

    fn alltoall(&self, bytes_per_pair: u64) -> SimTime {
        let p = self.ranks as f64;
        let bpp = bytes_per_pair as f64;
        // endpoint bound: every rank injects (p-1)·bpp
        let endpoint = (p - 1.0) * bpp / self.inj_bw;
        // bisection bound: p²/4 · bpp crosses the cut each way
        let bisection = p * p / 4.0 * bpp / self.bisection_bw;
        // pairwise-exchange message overheads, pipelined 4-deep
        let overhead = self.stage_latency().scale((p - 1.0) / 4.0);
        overhead + SimTime::from_secs(endpoint.max(bisection))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};

    fn bgp(ranks: usize) -> CollectiveModel {
        CollectiveModel::new(&bluegene_p(), ranks, 4)
    }
    fn qc(ranks: usize) -> CollectiveModel {
        CollectiveModel::new(&xt4_qc(), ranks, 4)
    }

    /// Fig 3(c): BG/P Bcast beats the XT at ALL message sizes.
    #[test]
    fn bcast_bgp_wins_at_all_sizes() {
        for bytes in [8u64, 512, 32 * 1024, 1 << 20, 4 << 20] {
            let b = bgp(8192).time(CollectiveOp::Bcast { bytes });
            let x = qc(8192).time(CollectiveOp::Bcast { bytes });
            assert!(b < x, "bytes={bytes}: BG/P {b} vs XT {x}");
        }
    }

    /// Fig 3(d): BG/P Bcast latency is nearly flat in process count.
    #[test]
    fn bcast_bgp_scales_flat() {
        let bytes = 32 * 1024;
        let t128 = bgp(128).time(CollectiveOp::Bcast { bytes });
        let t16k = bgp(16384).time(CollectiveOp::Bcast { bytes });
        assert!(
            t16k.as_secs() < t128.as_secs() * 1.6,
            "128p {t128} vs 16384p {t16k} must grow < 60%"
        );
        // while the XT's grows substantially
        let x128 = qc(128).time(CollectiveOp::Bcast { bytes });
        let x16k = qc(16384).time(CollectiveOp::Bcast { bytes });
        assert!(x16k.as_secs() > x128.as_secs() * 1.5);
    }

    /// §II.B.2: double-precision Allreduce is much faster than single on
    /// BG/P (tree offload), but NOT on the XT.
    #[test]
    fn allreduce_precision_gap_only_on_bgp() {
        let bytes = 32 * 1024;
        let b_dp = bgp(8192).time(CollectiveOp::Allreduce { bytes, dtype: DType::F64 });
        let b_sp = bgp(8192).time(CollectiveOp::Allreduce { bytes, dtype: DType::F32 });
        assert!(
            b_sp.as_secs() > 2.0 * b_dp.as_secs(),
            "BG/P SP {b_sp} must be >2x DP {b_dp}"
        );
        let x_dp = qc(8192).time(CollectiveOp::Allreduce { bytes, dtype: DType::F64 });
        let x_sp = qc(8192).time(CollectiveOp::Allreduce { bytes, dtype: DType::F32 });
        let ratio = x_sp.as_secs() / x_dp.as_secs();
        assert!((0.8..1.3).contains(&ratio), "XT ratio {ratio} should be ~1");
    }

    /// Fig 3(b): BG/P double-precision Allreduce scalability is
    /// exceptional — nearly flat across process counts.
    #[test]
    fn allreduce_dp_bgp_nearly_flat() {
        let bytes = 32 * 1024;
        let t256 = bgp(256).time(CollectiveOp::Allreduce { bytes, dtype: DType::F64 });
        let t16k = bgp(16384).time(CollectiveOp::Allreduce { bytes, dtype: DType::F64 });
        assert!(t16k.as_secs() < 1.6 * t256.as_secs());
    }

    /// Barrier: dedicated network keeps BG/P in low microseconds at scale.
    #[test]
    fn barrier_flat_on_bgp() {
        let b = bgp(32768).time(CollectiveOp::Barrier);
        assert!(b < SimTime::from_us(3), "BG/P barrier {b}");
        let x = qc(32768).time(CollectiveOp::Barrier);
        assert!(x > SimTime::from_us(20), "XT software barrier {x}");
    }

    /// Alltoall: endpoint-bound for small rank counts, bisection-bound at
    /// scale; time per rank grows with p.
    #[test]
    fn alltoall_grows_with_scale() {
        let small = bgp(256).time(CollectiveOp::Alltoall { bytes_per_pair: 1024 });
        let large = bgp(4096).time(CollectiveOp::Alltoall { bytes_per_pair: 1024 });
        assert!(large > small * 4);
    }

    /// XT's fatter links give it the Alltoall bandwidth edge at equal
    /// rank counts (GYRO's B3-gtc transposes).
    #[test]
    fn alltoall_xt_bandwidth_edge() {
        let b = bgp(1024).time(CollectiveOp::Alltoall { bytes_per_pair: 64 * 1024 });
        let x = qc(1024).time(CollectiveOp::Alltoall { bytes_per_pair: 64 * 1024 });
        assert!(x < b, "XT {x} should beat BG/P {b} on bulk Alltoall");
    }

    /// Degenerate communicators do not blow up.
    #[test]
    fn single_rank_is_trivial() {
        for op in [
            CollectiveOp::Barrier,
            CollectiveOp::Bcast { bytes: 1 << 20 },
            CollectiveOp::Allreduce { bytes: 8, dtype: DType::F64 },
        ] {
            assert!(bgp(1).time(op) < SimTime::from_us(1));
        }
    }

    /// Payload monotonicity: more bytes never gets faster.
    #[test]
    fn monotone_in_payload() {
        let m = bgp(4096);
        let mut prev = SimTime::ZERO;
        for bytes in [8u64, 64, 512, 4096, 32768, 1 << 18, 1 << 21] {
            let t = m.time(CollectiveOp::Allreduce { bytes, dtype: DType::F64 });
            assert!(t >= prev, "allreduce({bytes}) regressed");
            prev = t;
        }
    }

    /// Fragmented placement (hop_scale > 1) slows software collectives.
    #[test]
    fn hop_scale_slows_software_collectives() {
        let compact = CollectiveModel::new(&xt4_qc(), 4096, 4);
        let frag = CollectiveModel::with_hop_scale(&xt4_qc(), 4096, 4, 2.0);
        let op = CollectiveOp::Allreduce { bytes: 1024, dtype: DType::F64 };
        assert!(frag.time(op) > compact.time(op));
    }

    /// Reduce is cheaper than Allreduce for the same payload on the tree.
    #[test]
    fn reduce_cheaper_than_allreduce() {
        let m = bgp(8192);
        let r = m.time(CollectiveOp::Reduce { bytes: 1 << 20, dtype: DType::F64 });
        let ar = m.time(CollectiveOp::Allreduce { bytes: 1 << 20, dtype: DType::F64 });
        assert!(r < ar);
    }
}
