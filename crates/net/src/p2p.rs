//! Point-to-point wire model with contention.
//!
//! A message from node A to node B traverses the dimension-ordered route
//! computed by `hpcsim-topo`. Its wire time is
//!
//! ```text
//! t = hops · per_hop + bytes / bw_eff
//! bw_eff = min( link_bw / max_link_load , inj_bw / tx_load , inj_bw / rx_load )
//! ```
//!
//! where the loads count flows concurrently using each resource,
//! *including this one*. The snapshot is taken at injection time — a
//! standard flow-level approximation (flows that finish early make the
//! estimate pessimistic, flows that start later make it optimistic; for
//! the phase-structured codes in the study the two effects largely
//! cancel). On-node peers (VN-mode tasks of one node) bypass the torus
//! entirely via shared memory, which the BG/P system software also does.
//!
//! The contention engine is zero-copy: routes travel as compact
//! [`RouteSegs`] values (at most three ring segments, `Copy`), link
//! counters are walked by segment arithmetic, and a message's whole
//! acquire/wire/release lifecycle performs no heap allocation. Bulk
//! phase registration ([`FlowTracker::acquire_phase`]) turns N flows
//! into difference-array runs and lands them with one prefix-sum sweep
//! per link direction.

use hpcsim_engine::SimTime;
use hpcsim_machine::MachineSpec;
use hpcsim_topo::{LinkHealth, LinkId, RouteSegs, Torus3D};

/// A registered in-flight flow; pass back to [`FlowTracker::release`].
///
/// Fixed-size and `Copy`: the route is carried as a [`RouteSegs`] value,
/// so registering and releasing a flow never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowHandle {
    segs: RouteSegs,
    src_node: usize,
    dst_node: usize,
}

impl FlowHandle {
    /// Describe a flow without registering it (used with
    /// [`FlowTracker::acquire_phase`]).
    pub fn new(segs: RouteSegs, src_node: usize, dst_node: usize) -> Self {
        FlowHandle { segs, src_node, dst_node }
    }

    /// The flow's route.
    pub fn segs(&self) -> RouteSegs {
        self.segs
    }

    /// Injecting node index.
    pub fn src_node(&self) -> usize {
        self.src_node
    }

    /// Receiving node index.
    pub fn dst_node(&self) -> usize {
        self.dst_node
    }
}

/// Concurrent-flow accounting over torus links and node endpoints.
///
/// Two registration paths share the same counters:
///
/// * [`FlowTracker::acquire`] — one flow at a time, walking its links
///   via segment arithmetic, O(hops) with zero allocation (the replay
///   engine's injection-snapshot path);
/// * [`FlowTracker::acquire_phase`] — N flows of a phase at once via a
///   per-direction difference array + prefix sum, O(N + links) instead
///   of O(N × hops) (bulk analysis of halo phases / collective
///   sub-steps).
#[derive(Debug, Clone)]
pub struct FlowTracker {
    torus: Torus3D,
    link_flows: Vec<u32>,
    node_tx: Vec<u32>,
    node_rx: Vec<u32>,
    /// Reusable difference-array scratch for [`FlowTracker::acquire_phase`]
    /// (one slot per node plus a sentinel for runs ending at a ring seam).
    phase_diff: Vec<i32>,
    /// Release-without-acquire events absorbed in release builds (debug
    /// builds assert instead). Saturating at zero keeps the counters
    /// meaningful after a bookkeeping bug; the count is surfaced as a
    /// probe gauge so the corruption is visible rather than silent.
    underflows: u64,
}

impl FlowTracker {
    /// Tracker for a torus of the given size.
    pub fn new(torus: &Torus3D) -> Self {
        FlowTracker {
            torus: *torus,
            link_flows: vec![0; torus.links()],
            node_tx: vec![0; torus.nodes()],
            node_rx: vec![0; torus.nodes()],
            phase_diff: Vec::new(),
            underflows: 0,
        }
    }

    /// Number of underflowing releases absorbed so far (always 0 in
    /// debug builds, which assert on the first one).
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Register a flow over `segs` from `src_node` to `dst_node`;
    /// returns the handle and the bottleneck concurrency (≥ 1) including
    /// this flow.
    pub fn acquire(
        &mut self,
        segs: RouteSegs,
        src_node: usize,
        dst_node: usize,
    ) -> (FlowHandle, u32) {
        self.node_tx[src_node] += 1;
        self.node_rx[dst_node] += 1;
        let mut worst = self.node_tx[src_node].max(self.node_rx[dst_node]);
        self.walk_links(segs, |_link, c| {
            *c += 1;
            worst = worst.max(*c);
        });
        (FlowHandle { segs, src_node, dst_node }, worst)
    }

    /// Deregister a completed flow.
    pub fn release(&mut self, h: FlowHandle) {
        debug_assert!(
            self.node_tx[h.src_node] > 0,
            "release without acquire: tx endpoint at node {} (flow {} -> {}, {} hops)",
            h.src_node,
            h.src_node,
            h.dst_node,
            h.segs.hops(),
        );
        debug_assert!(
            self.node_rx[h.dst_node] > 0,
            "release without acquire: rx endpoint at node {} (flow {} -> {}, {} hops)",
            h.dst_node,
            h.src_node,
            h.dst_node,
            h.segs.hops(),
        );
        let mut bad = 0u64;
        for counter in [&mut self.node_tx[h.src_node], &mut self.node_rx[h.dst_node]] {
            match counter.checked_sub(1) {
                Some(v) => *counter = v,
                None => bad += 1,
            }
        }
        let (src_node, dst_node) = (h.src_node, h.dst_node);
        self.walk_links(h.segs, |link, c| {
            debug_assert!(
                *c > 0,
                "double release on link {link} (node {}, dir {}, load {}) for flow {} -> {}",
                link / 6,
                link % 6,
                *c,
                src_node,
                dst_node,
            );
            match c.checked_sub(1) {
                Some(v) => *c = v,
                None => bad += 1,
            }
        });
        if bad > 0 {
            self.underflows += bad;
            eprintln!(
                "hpcsim-net: flow release underflow ({bad} counters) for flow \
                 {src_node} -> {dst_node}; counters saturated at zero"
            );
        }
    }

    /// Apply `f(link_index, counter)` to the link counter of every link
    /// on `segs`, walking each dimension's ring run as a tight strided
    /// loop (the generic [`RouteSegs::links`] iterator re-dispatches on
    /// the dimension at every hop; the per-message paths are hot enough
    /// to care). The link index is `node * 6 + dir` — the same linear id
    /// [`LinkId`] uses — so callers can attribute counter changes.
    #[inline]
    fn walk_links<F: FnMut(usize, &mut u32)>(&mut self, segs: RouteSegs, mut f: F) {
        let dims = self.torus.dims;
        let mut cur = segs.start;
        let mut node = cur[0] + dims[0] * (cur[1] + dims[1] * cur[2]);
        for dim in 0..3 {
            let len = segs.offs[dim];
            if len == 0 {
                continue;
            }
            let n = dims[dim];
            let stride = match dim {
                0 => 1,
                1 => dims[0],
                _ => dims[0] * dims[1],
            };
            let dir = 2 * dim + usize::from(len < 0);
            let mut v = cur[dim];
            if len > 0 {
                for _ in 0..len {
                    f(node * 6 + dir, &mut self.link_flows[node * 6 + dir]);
                    if v + 1 == n {
                        v = 0;
                        node -= stride * (n - 1);
                    } else {
                        v += 1;
                        node += stride;
                    }
                }
            } else {
                for _ in 0..-len {
                    f(node * 6 + dir, &mut self.link_flows[node * 6 + dir]);
                    if v == 0 {
                        v = n - 1;
                        node += stride * (n - 1);
                    } else {
                        v -= 1;
                        node -= stride;
                    }
                }
            }
            cur[dim] = v;
        }
    }

    /// Register every flow of a phase at once; returns the peak
    /// concurrency over all links and endpoints the phase touches (0 for
    /// an empty phase). The resulting counter state is exactly what
    /// sequential [`FlowTracker::acquire`] calls would leave behind, but
    /// the cost is O(flows + links): each flow's ring segments become
    /// ±1 entries in a per-direction difference array, and one prefix-sum
    /// sweep per direction lands the loads on the link counters.
    ///
    /// Release each flow individually via [`FlowTracker::release`], or
    /// in bulk with [`FlowTracker::release_phase`].
    pub fn acquire_phase(&mut self, flows: &[FlowHandle]) -> u32 {
        let mut peak = 0u32;
        for h in flows {
            self.node_tx[h.src_node] += 1;
            self.node_rx[h.dst_node] += 1;
        }
        for h in flows {
            peak = peak.max(self.node_tx[h.src_node]).max(self.node_rx[h.dst_node]);
        }
        peak.max(self.phase_apply(flows, 1))
    }

    /// Deregister every flow of a phase (the inverse of
    /// [`FlowTracker::acquire_phase`], same O(flows + links) shape).
    pub fn release_phase(&mut self, flows: &[FlowHandle]) {
        for h in flows {
            debug_assert!(
                self.node_tx[h.src_node] > 0,
                "phase release without acquire: tx endpoint at node {} (flow {} -> {})",
                h.src_node,
                h.src_node,
                h.dst_node,
            );
            debug_assert!(
                self.node_rx[h.dst_node] > 0,
                "phase release without acquire: rx endpoint at node {} (flow {} -> {})",
                h.dst_node,
                h.src_node,
                h.dst_node,
            );
            for counter in [&mut self.node_tx[h.src_node], &mut self.node_rx[h.dst_node]] {
                match counter.checked_sub(1) {
                    Some(v) => *counter = v,
                    None => self.underflows += 1,
                }
            }
        }
        self.phase_apply(flows, -1);
    }

    /// Shared bulk path: mark every flow's ring segments as ±`delta`
    /// runs in six per-direction difference arrays (one pass over the
    /// flows), then land each direction with one prefix-sum sweep over
    /// its links. Returns the peak link load among updated links.
    fn phase_apply(&mut self, flows: &[FlowHandle], delta: i32) -> u32 {
        let lane = self.torus.nodes() + 1; // +1: runs ending at a ring seam
        self.phase_diff.clear();
        self.phase_diff.resize(6 * lane, 0);
        let mut any = [false; 6];
        for h in flows {
            let segments = h.segs.segments(&self.torus);
            for (dim, &(entry, len)) in segments.iter().enumerate() {
                if len == 0 {
                    continue;
                }
                let dir = 2 * dim + usize::from(len < 0);
                any[dir] = true;
                self.mark_run(dir * lane, entry, dim, len, delta);
            }
        }
        let mut peak = 0u32;
        for (dir, touched) in any.into_iter().enumerate() {
            if touched {
                peak = peak.max(self.scatter_direction(dir, dir * lane));
            }
        }
        peak
    }

    /// Mark a ring run in the difference array at `base_off`. The run
    /// covers the link *source* nodes of a segment entering at `entry`
    /// with signed length `len` along `dim`; positions are dim-major
    /// (the segment's dimension varies fastest), so any run is
    /// contiguous modulo one wrap split.
    fn mark_run(
        &mut self,
        base_off: usize,
        entry: hpcsim_topo::Coord,
        dim: usize,
        len: i32,
        delta: i32,
    ) {
        let n = self.torus.dims[dim];
        let (u, w) = match dim {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        let base = base_off + n * (entry[u] + self.torus.dims[u] * entry[w]);
        // link-source ring positions: [entry, entry+len) going +, or
        // [entry+len+1, entry] going −, both taken modulo the ring
        let hops = len.unsigned_abs() as usize;
        let v0 = if len > 0 {
            entry[dim]
        } else {
            (entry[dim] as i32 + len + 1).rem_euclid(n as i32) as usize
        };
        if v0 + hops <= n {
            self.phase_diff[base + v0] += delta;
            self.phase_diff[base + v0 + hops] -= delta;
        } else {
            self.phase_diff[base + v0] += delta;
            self.phase_diff[base + n] -= delta;
            self.phase_diff[base] += delta;
            self.phase_diff[base + v0 + hops - n] -= delta;
        }
    }

    /// Prefix-sum the difference array slice at `base_off` (dim-major
    /// positions for `dir`'s dimension) onto the link counters; returns
    /// the peak updated link load.
    fn scatter_direction(&mut self, dir: usize, base_off: usize) -> u32 {
        let dim = dir / 2;
        let dims = self.torus.dims;
        let (u, w) = match dim {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        let stride_of = |d: usize| match d {
            0 => 1,
            1 => dims[0],
            _ => dims[0] * dims[1],
        };
        let (stride, su, sw) = (stride_of(dim), stride_of(u), stride_of(w));
        let mut peak = 0u32;
        let mut acc = 0i32;
        let mut pos = base_off;
        for cw in 0..dims[w] {
            for cu in 0..dims[u] {
                // node index of the lane's entry (segment coordinate 0)
                let mut node = cu * su + cw * sw;
                for _ in 0..dims[dim] {
                    acc += self.phase_diff[pos];
                    if acc != 0 {
                        let c = &mut self.link_flows[node * 6 + dir];
                        debug_assert!(
                            *c as i64 + acc as i64 >= 0,
                            "phase release underflow on link {} (node {node}, dir {dir}): \
                             load {} + delta {acc}",
                            node * 6 + dir,
                            *c,
                        );
                        let v = *c as i64 + acc as i64;
                        if v < 0 {
                            self.underflows += v.unsigned_abs();
                            *c = 0;
                        } else {
                            *c = v as u32;
                        }
                        peak = peak.max(*c);
                    }
                    pos += 1;
                    node += stride;
                }
            }
        }
        debug_assert_eq!(acc + self.phase_diff[pos], 0, "unbalanced phase runs");
        peak
    }

    /// Bottleneck concurrency a registered flow currently sees (its own
    /// registration included) — the per-flow query companion to
    /// [`FlowTracker::acquire_phase`].
    pub fn flow_load(&self, h: &FlowHandle) -> u32 {
        let mut worst = self.node_tx[h.src_node].max(self.node_rx[h.dst_node]);
        for l in h.segs.links(&self.torus) {
            worst = worst.max(self.link_flows[l.0]);
        }
        worst
    }

    /// Current flow count on a link (diagnostics/tests).
    pub fn link_load(&self, l: LinkId) -> u32 {
        self.link_flows[l.0]
    }

    /// Current transmit-side flow count at a node (diagnostics/tests).
    pub fn tx_load(&self, node: usize) -> u32 {
        self.node_tx[node]
    }

    /// Current receive-side flow count at a node (diagnostics/tests).
    pub fn rx_load(&self, node: usize) -> u32 {
        self.node_rx[node]
    }

    /// True when no flows are registered anywhere.
    pub fn is_quiescent(&self) -> bool {
        self.link_flows.iter().all(|&c| c == 0)
            && self.node_tx.iter().all(|&c| c == 0)
            && self.node_rx.iter().all(|&c| c == 0)
    }
}

/// Bounded retransmit-with-backoff semantics for lost messages.
///
/// Under fault injection a message may lose its first few transmission
/// attempts. Each lost attempt costs the sender one rendezvous timeout
/// plus an exponentially growing backoff before the retry goes out;
/// [`RetransmitPolicy::penalty`] converts a loss count into that total
/// delay, or reports the retransmit budget exhausted (`None`) so the
/// replay engine can diagnose a stall instead of wedging its event
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitPolicy {
    /// Time before a lost attempt is declared dead.
    pub timeout: SimTime,
    /// Base backoff; attempt `k` waits `backoff * 2^k` extra.
    pub backoff: SimTime,
    /// Attempts beyond the first allowed before giving up.
    pub max_retries: u32,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            timeout: SimTime::from_us(50),
            backoff: SimTime::from_us(10),
            max_retries: 6,
        }
    }
}

impl RetransmitPolicy {
    /// Total delay added by `lost` consecutive lost attempts, or `None`
    /// when `lost` exceeds the retry budget (a stall).
    pub fn penalty(&self, lost: u32) -> Option<SimTime> {
        if lost > self.max_retries {
            return None;
        }
        let mut t = SimTime::ZERO;
        for k in 0..lost {
            t = t + self.timeout + self.backoff * (1u64 << k.min(16));
        }
        Some(t)
    }
}

/// The per-machine point-to-point wire model.
#[derive(Debug, Clone)]
pub struct P2pModel {
    torus: Torus3D,
    /// Uncontended wire bandwidth: `min(link_bw, injection_bw / 2)`,
    /// hoisted out of the per-message path at construction.
    wire_bw: f64,
    per_hop: SimTime,
    shm_latency: SimTime,
    shm_bw: f64,
    /// Adaptive-routing path diversity (≥ 1): contending flows spread
    /// over this many effective routes.
    diversity: f64,
    /// Background flows per link from other jobs sharing the machine
    /// (non-zero for fragmented XT allocations).
    ambient: f64,
}

impl P2pModel {
    /// Build from a machine spec and the job's torus.
    pub fn new(machine: &MachineSpec, torus: Torus3D) -> Self {
        P2pModel {
            torus,
            // Table 1 injection numbers are bidirectional aggregates.
            wire_bw: machine.nic.torus_link_bw.min(machine.nic.injection_bw / 2.0),
            per_hop: machine.nic.per_hop,
            // On-node peers copy through shared memory: a cache-line
            // handshake plus a memcpy at a fraction of node bandwidth.
            shm_latency: SimTime::from_ns(500),
            shm_bw: machine.mem.bw_bytes / 4.0,
            diversity: machine.nic.route_diversity.max(1.0),
            ambient: 0.0,
        }
    }

    /// Add `ambient` background flows per link (other jobs on a shared,
    /// fragmented machine).
    pub fn with_ambient(mut self, ambient: f64) -> Self {
        self.ambient = ambient.max(0.0);
        self
    }

    /// Bandwidth share divisor for a bottleneck concurrency of `load`
    /// flows. Contending flows only overlap for part of their lifetimes
    /// (the half-overlap approximation), and adaptive routing spreads
    /// them over `diversity` effective paths.
    fn share_divisor(&self, load: u32) -> f64 {
        let eff_load = 1.0 + (load.max(1) as f64 - 1.0) / self.diversity;
        // Ambient traffic from co-resident jobs taxes every link the
        // fragmented job touches, multiplicatively: those links are not
        // spare capacity, they belong to someone else's partition.
        (1.0 + eff_load) / 2.0 * (1.0 + self.ambient)
    }

    /// The torus this model routes on.
    pub fn torus(&self) -> &Torus3D {
        &self.torus
    }

    /// True when contention cannot change any wire time: with infinite
    /// route diversity the share divisor is load-independent, so
    /// [`P2pModel::wire_time_contended`] returns exactly
    /// [`P2pModel::wire_time`] at any load (ambient traffic taxes both
    /// identically). This is the condition under which the DAG sweep
    /// engine is exact against replay.
    pub fn is_contention_flat(&self) -> bool {
        self.diversity.is_infinite()
    }

    /// Contention-free wire time from `src_node` to `dst_node`.
    pub fn wire_time(&self, src_node: usize, dst_node: usize, bytes: u64) -> SimTime {
        if src_node == dst_node {
            return self.shm_base() + self.shm_serial_cost(bytes);
        }
        let hops = self.torus.hops(self.torus.coord(src_node), self.torus.coord(dst_node));
        self.wire_time_for_hops(hops, bytes)
    }

    /// Contention-free wire time for a pre-computed *off-node* hop
    /// count: exactly [`P2pModel::wire_time`] with the coordinate
    /// lookups hoisted out. Sweep evaluators price thousands of
    /// channels per point and batch the route geometry themselves; the
    /// formula lives here so the two paths cannot drift apart.
    pub fn wire_time_for_hops(&self, hops: usize, bytes: u64) -> SimTime {
        self.hop_cost(hops) + self.serial_cost(bytes)
    }

    /// Routing component of the contention-free off-node wire time.
    /// `SimTime` is integer nanoseconds, so
    /// `hop_cost(h) + serial_cost(b) == wire_time_for_hops(h, b)`
    /// bit-for-bit — sweep evaluators exploit that to price a payload
    /// class once and reuse it across every route carrying it.
    pub fn hop_cost(&self, hops: usize) -> SimTime {
        self.per_hop * hops as u64
    }

    /// Serialization component of the contention-free off-node wire
    /// time (the other half of the [`P2pModel::hop_cost`] split).
    pub fn serial_cost(&self, bytes: u64) -> SimTime {
        let bw = self.wire_bw / self.share_divisor(1);
        SimTime::from_secs(bytes as f64 / bw)
    }

    /// Latency component of the same-node shared-memory path.
    pub fn shm_base(&self) -> SimTime {
        self.shm_latency
    }

    /// Serialization component of the same-node shared-memory path.
    pub fn shm_serial_cost(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.shm_bw)
    }

    /// Wire time under current contention; registers the flow in
    /// `tracker`. Returns the duration and the handle to release at
    /// completion (`None` for the shared-memory path, which is not
    /// tracked).
    pub fn wire_time_contended(
        &self,
        tracker: &mut FlowTracker,
        src_node: usize,
        dst_node: usize,
        bytes: u64,
    ) -> (SimTime, Option<FlowHandle>) {
        if src_node == dst_node {
            return (self.shm_latency + SimTime::from_secs(bytes as f64 / self.shm_bw), None);
        }
        let src = self.torus.coord(src_node);
        let dst = self.torus.coord(dst_node);
        let segs = self.torus.route_segs(src, dst);
        let hops = segs.hops();
        let (handle, load) = tracker.acquire(segs, src_node, dst_node);
        let bw = self.wire_bw / self.share_divisor(load);
        let t = self.per_hop * hops as u64 + SimTime::from_secs(bytes as f64 / bw);
        (t, Some(handle))
    }

    /// Fault-aware variant of [`P2pModel::wire_time_contended`]: routes
    /// around dead links via the topo detour router and derates the
    /// bandwidth by the worst surviving link's health factor. Returns up
    /// to two flow handles (a dog-leg detour occupies two route legs),
    /// both of which the caller must release at completion, or `None`
    /// when no route survives the outages (the destination is cut off).
    ///
    /// With an all-healthy map this is exactly the legacy path: one
    /// direct leg, full bandwidth, identical timing.
    #[allow(clippy::type_complexity)]
    pub fn wire_time_contended_avoiding<H: LinkHealth>(
        &self,
        tracker: &mut FlowTracker,
        health: &H,
        src_node: usize,
        dst_node: usize,
        bytes: u64,
    ) -> Option<(SimTime, Option<FlowHandle>, Option<FlowHandle>)> {
        if src_node == dst_node {
            let t = self.shm_latency + SimTime::from_secs(bytes as f64 / self.shm_bw);
            return Some((t, None, None));
        }
        let src = self.torus.coord(src_node);
        let dst = self.torus.coord(dst_node);
        let detour = self.torus.route_segs_avoiding(src, dst, health)?;
        let hops = detour.hops();
        let legs = detour.legs();
        // A dog-leg is modelled as two chained legs meeting at the
        // waypoint node, so the source's injection port is not charged
        // twice for what is one flow.
        let (h1, h2, load) = if legs.len() == 2 {
            let way = self.torus.index(legs[1].start);
            let (h1, load1) = tracker.acquire(legs[0], src_node, way);
            let (h2, load2) = tracker.acquire(legs[1], way, dst_node);
            (h1, Some(h2), load1.max(load2))
        } else {
            let (h1, load1) = tracker.acquire(legs[0], src_node, dst_node);
            (h1, None, load1)
        };
        let derate = detour.min_bw_factor(&self.torus, health);
        let bw = self.wire_bw * derate / self.share_divisor(load);
        let t = self.per_hop * hops as u64 + SimTime::from_secs(bytes as f64 / bw);
        Some((t, Some(h1), h2))
    }

    /// Zero-byte handshake time along an already-acquired flow's path —
    /// exactly `wire_time(src, dst, 0)` (a zero-byte payload drains in
    /// zero time), but read off the handle's segments instead of
    /// re-deriving coordinates and hop counts. `None` means the
    /// shared-memory path (same node), whose zero-byte cost is the
    /// fixed latency.
    pub fn handshake_time(&self, handle: Option<&FlowHandle>) -> SimTime {
        match handle {
            Some(h) => self.per_hop * h.segs().hops() as u64,
            None => self.shm_latency,
        }
    }

    /// Mean nearest-neighbour (1 hop) small-message wire time — a
    /// convenience for calibration tests.
    pub fn nn_latency(&self) -> SimTime {
        self.per_hop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};
    use hpcsim_topo::Direction;

    fn bgp_model() -> P2pModel {
        P2pModel::new(&bluegene_p(), Torus3D::new([8, 8, 8]))
    }

    #[test]
    fn wire_time_scales_with_hops_and_bytes() {
        let m = bgp_model();
        let one_hop_small = m.wire_time(0, 1, 8);
        let far_small = m.wire_time(0, m.torus().index([4, 4, 4]), 8);
        assert!(far_small > one_hop_small);
        let one_hop_big = m.wire_time(0, 1, 1 << 20);
        assert!(one_hop_big > one_hop_small * 100);
    }

    #[test]
    fn bgp_large_message_rate_near_425mb() {
        let m = bgp_model();
        let bytes = 64 * 1024 * 1024u64;
        let t = m.wire_time(0, 1, bytes).as_secs();
        let rate = bytes as f64 / t;
        assert!(rate > 0.9 * 425e6 && rate <= 425e6, "rate {rate:.3e}");
    }

    #[test]
    fn xt_large_message_rate_is_higher() {
        let xt = P2pModel::new(&xt4_qc(), Torus3D::new([8, 8, 8]));
        let bgp = bgp_model();
        let bytes = 16 * 1024 * 1024u64;
        let t_xt = xt.wire_time(0, 1, bytes).as_secs();
        let t_bgp = bgp.wire_time(0, 1, bytes).as_secs();
        assert!(t_xt < t_bgp / 4.0, "XT bandwidth strength: {t_xt} vs {t_bgp}");
    }

    #[test]
    fn handshake_time_matches_zero_byte_wire_time() {
        let m = bgp_model();
        let mut tracker = FlowTracker::new(m.torus());
        for &(a, b) in &[(0usize, 1usize), (0, 511), (3, 3), (100, 37)] {
            let (_t, handle) = m.wire_time_contended(&mut tracker, a, b, 4096);
            assert_eq!(m.handshake_time(handle.as_ref()), m.wire_time(a, b, 0), "pair {a}->{b}");
            if let Some(h) = handle {
                tracker.release(h);
            }
        }
    }

    #[test]
    fn on_node_messages_bypass_torus() {
        let m = bgp_model();
        let shm = m.wire_time(5, 5, 4096);
        let wire = m.wire_time(5, 6, 4096);
        assert!(shm < wire);
    }

    #[test]
    fn contention_shares_bandwidth() {
        // XT (deterministic routing): a second flow over the same link
        // sees the half-overlap share, ~1.5x the solo time.
        let m = P2pModel::new(&xt4_qc(), Torus3D::new([8, 8, 8]));
        let mut tracker = FlowTracker::new(m.torus());
        let bytes = 1 << 22;
        let (t1, h1) = m.wire_time_contended(&mut tracker, 0, 1, bytes);
        let (t2, h2) = m.wire_time_contended(&mut tracker, 0, 1, bytes);
        let ratio = t2.as_secs() / t1.as_secs();
        assert!(ratio > 1.3 && ratio < 1.7, "share ratio {ratio:.2}");
        tracker.release(h1.unwrap());
        tracker.release(h2.unwrap());
        assert!(tracker.is_quiescent());
        // BG/P's adaptive routing takes a smaller hit
        let b = bgp_model();
        let mut tr2 = FlowTracker::new(b.torus());
        let (b1, g1) = b.wire_time_contended(&mut tr2, 0, 1, bytes);
        let (b2, g2) = b.wire_time_contended(&mut tr2, 0, 1, bytes);
        let bratio = b2.as_secs() / b1.as_secs();
        assert!(bratio > 1.05 && bratio < ratio, "BG/P adaptive ratio {bratio:.2}");
        tr2.release(g1.unwrap());
        tr2.release(g2.unwrap());
    }

    #[test]
    fn flat_contention_makes_contended_time_exact() {
        // With infinite route diversity the contended path must return
        // bit-for-bit the contention-free wire time at any load — the
        // exactness condition the DAG sweep engine relies on.
        let m = P2pModel::new(&bluegene_p().with_flat_contention(), Torus3D::new([8, 8, 8]));
        assert!(m.is_contention_flat());
        assert!(!bgp_model().is_contention_flat());
        let mut tracker = FlowTracker::new(m.torus());
        let bytes = 1 << 22;
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (t, h) = m.wire_time_contended(&mut tracker, 0, 1, bytes);
            assert_eq!(t, m.wire_time(0, 1, bytes));
            handles.push(h.unwrap());
        }
        for h in handles {
            tracker.release(h);
        }
        assert!(tracker.is_quiescent());
    }

    #[test]
    fn ambient_load_slows_everything() {
        let quiet = P2pModel::new(&xt4_qc(), Torus3D::new([8, 8, 8]));
        let busy = P2pModel::new(&xt4_qc(), Torus3D::new([8, 8, 8])).with_ambient(1.0);
        let bytes = 1 << 20;
        assert!(busy.wire_time(0, 1, bytes) > quiet.wire_time(0, 1, bytes));
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let m = bgp_model();
        let mut tracker = FlowTracker::new(m.torus());
        let a = m.torus().index([0, 0, 0]);
        let b = m.torus().index([1, 0, 0]);
        let c = m.torus().index([0, 4, 4]);
        let d = m.torus().index([1, 4, 4]);
        let (t1, h1) = m.wire_time_contended(&mut tracker, a, b, 1 << 20);
        let (t2, h2) = m.wire_time_contended(&mut tracker, c, d, 1 << 20);
        assert_eq!(t1, t2, "disjoint flows must be independent");
        tracker.release(h1.unwrap());
        tracker.release(h2.unwrap());
    }

    #[test]
    fn endpoint_contention_counts() {
        // Two flows out of the same node in different directions still
        // share injection bandwidth.
        let m = bgp_model();
        let mut tracker = FlowTracker::new(m.torus());
        let a = m.torus().index([0, 0, 0]);
        let xp = m.torus().index([1, 0, 0]);
        let yp = m.torus().index([0, 1, 0]);
        let (_t1, h1) = m.wire_time_contended(&mut tracker, a, xp, 1 << 20);
        let (t2, _h2) = m.wire_time_contended(&mut tracker, a, yp, 1 << 20);
        let solo = m.wire_time(a, yp, 1 << 20);
        assert!(t2 > solo, "shared injection must slow the second flow");
        tracker.release(h1.unwrap());
    }

    #[test]
    fn tracker_link_load_roundtrip() {
        let t = Torus3D::new([4, 4, 4]);
        let mut tracker = FlowTracker::new(&t);
        let segs = t.route_segs([0, 0, 0], [2, 0, 0]);
        let first = segs.links(&t).next().unwrap();
        let (h, load) = tracker.acquire(segs, 0, t.index([2, 0, 0]));
        assert_eq!(load, 1);
        assert_eq!(tracker.link_load(first), 1);
        assert_eq!(tracker.flow_load(&h), 1);
        tracker.release(h);
        assert_eq!(tracker.link_load(first), 0);
        assert!(tracker.is_quiescent());
    }

    #[test]
    fn flow_handle_is_copy_and_fixed_size() {
        let t = Torus3D::new([4, 4, 4]);
        let h = FlowHandle::new(t.route_segs([0, 0, 0], [2, 1, 0]), 0, 6);
        let h2 = h; // Copy
        assert_eq!(h, h2);
        assert_eq!(h.segs().hops(), 3);
        // the handle carries no heap state: its size is a few words
        assert!(std::mem::size_of::<FlowHandle>() <= 64);
    }

    #[test]
    fn phase_bulk_load_matches_sequential() {
        let t = Torus3D::new([4, 6, 2]);
        let m = P2pModel::new(&bluegene_p(), t);
        let pairs: Vec<(usize, usize)> =
            (0..t.nodes()).map(|i| (i, (i * 7 + 3) % t.nodes())).filter(|(a, b)| a != b).collect();
        let handles: Vec<FlowHandle> = pairs
            .iter()
            .map(|&(a, b)| FlowHandle::new(t.route_segs(t.coord(a), t.coord(b)), a, b))
            .collect();
        let mut seq = FlowTracker::new(m.torus());
        let mut worst_seq = 0;
        for (h, &(a, b)) in handles.iter().zip(&pairs) {
            let (_, load) = seq.acquire(h.segs(), a, b);
            worst_seq = worst_seq.max(load);
        }
        let mut bulk = FlowTracker::new(m.torus());
        let peak = bulk.acquire_phase(&handles);
        for l in 0..t.links() {
            let l = hpcsim_topo::LinkId(l);
            assert_eq!(bulk.link_load(l), seq.link_load(l));
        }
        for node in 0..t.nodes() {
            assert_eq!(bulk.tx_load(node), seq.tx_load(node));
            assert_eq!(bulk.rx_load(node), seq.rx_load(node));
        }
        assert_eq!(peak, worst_seq, "phase peak equals the sequential worst case");
        bulk.release_phase(&handles);
        assert!(bulk.is_quiescent());
    }

    #[test]
    fn per_hop_latency_dominates_small_messages() {
        let m = bgp_model();
        let near = m.wire_time(0, 1, 8);
        let far = m.wire_time(0, m.torus().index([4, 4, 4]), 8);
        // 12 hops vs 1 hop at 64 ns/hop
        let delta = (far - near).as_secs();
        assert!((delta - 11.0 * 64e-9).abs() < 1e-9, "delta {delta}");
        let _ = Direction::XPlus; // silence unused import lint paths
    }

    #[test]
    fn retransmit_penalty_grows_then_exhausts() {
        let p = RetransmitPolicy::default();
        assert_eq!(p.penalty(0), Some(SimTime::ZERO));
        let one = p.penalty(1).unwrap();
        let two = p.penalty(2).unwrap();
        assert!(one > SimTime::ZERO);
        assert!(two > one * 2, "backoff must grow faster than linear");
        assert!(p.penalty(p.max_retries).is_some());
        assert_eq!(p.penalty(p.max_retries + 1), None, "budget exhausted is a stall");
    }

    /// Dead-link stub for the fault-aware wire-time tests.
    struct DeadSet(Vec<LinkId>);

    impl hpcsim_topo::LinkHealth for DeadSet {
        fn is_dead(&self, link: LinkId) -> bool {
            self.0.contains(&link)
        }

        fn bw_factor(&self, _link: LinkId) -> f64 {
            1.0
        }
    }

    #[test]
    fn fault_free_avoiding_matches_legacy_wire_time() {
        let m = bgp_model();
        let mut legacy = FlowTracker::new(m.torus());
        let mut faulty = FlowTracker::new(m.torus());
        for &(a, b) in &[(0usize, 1usize), (0, 511), (3, 3), (100, 37)] {
            let (t_legacy, h_legacy) = m.wire_time_contended(&mut legacy, a, b, 1 << 16);
            let (t, h1, h2) = m
                .wire_time_contended_avoiding(&mut faulty, &hpcsim_topo::AllHealthy, a, b, 1 << 16)
                .expect("healthy torus always routes");
            assert_eq!(t, t_legacy, "pair {a}->{b}");
            assert_eq!(h1, h_legacy);
            assert_eq!(h2, None, "direct routes have a single leg");
            if let Some(h) = h_legacy {
                legacy.release(h);
            }
            if let Some(h) = h1 {
                faulty.release(h);
            }
        }
        assert!(faulty.is_quiescent());
    }

    #[test]
    fn dead_link_detour_is_slower_but_completes() {
        let m = bgp_model();
        let t3 = *m.torus();
        let a = t3.index([0, 0, 0]);
        let b = t3.index([3, 0, 0]);
        let dead: Vec<LinkId> = t3.route(t3.coord(a), t3.coord(b)).into_iter().take(1).collect();
        let health = DeadSet(dead);
        let mut tracker = FlowTracker::new(&t3);
        let (t, h1, h2) =
            m.wire_time_contended_avoiding(&mut tracker, &health, a, b, 1 << 20).unwrap();
        assert!(t >= m.wire_time(a, b, 1 << 20), "detour can't beat the direct route");
        for h in [h1, h2].into_iter().flatten() {
            tracker.release(h);
        }
        assert!(tracker.is_quiescent(), "all detour legs must release cleanly");
    }

    #[test]
    fn cut_off_destination_reports_no_route() {
        let m = bgp_model();
        let t3 = *m.torus();
        let a = t3.index([0, 0, 0]);
        let dead: Vec<LinkId> = (0..6).map(|d| LinkId(a * 6 + d)).collect();
        let health = DeadSet(dead);
        let mut tracker = FlowTracker::new(&t3);
        assert!(m.wire_time_contended_avoiding(&mut tracker, &health, a, 1, 64).is_none());
        assert!(tracker.is_quiescent(), "a failed route must not leak registrations");
        // the on-node path does not touch the torus at all
        assert!(m.wire_time_contended_avoiding(&mut tracker, &health, a, a, 64).is_some());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "release without acquire")]
    fn double_release_asserts_in_debug() {
        let t = Torus3D::new([4, 4, 4]);
        let mut tracker = FlowTracker::new(&t);
        let segs = t.route_segs([0, 0, 0], [2, 0, 0]);
        let (h, _) = tracker.acquire(segs, 0, t.index([2, 0, 0]));
        tracker.release(h);
        tracker.release(h); // second release must assert
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn double_release_saturates_in_release() {
        let t = Torus3D::new([4, 4, 4]);
        let mut tracker = FlowTracker::new(&t);
        let segs = t.route_segs([0, 0, 0], [2, 0, 0]);
        let dst = t.index([2, 0, 0]);
        let (h, _) = tracker.acquire(segs, 0, dst);
        tracker.release(h);
        tracker.release(h); // absorbed: counters saturate, underflows counted
        assert!(tracker.underflows() > 0, "underflow must be counted, not silent");
        assert_eq!(tracker.tx_load(0), 0);
        assert_eq!(tracker.rx_load(dst), 0);
        assert!(tracker.is_quiescent(), "saturation must not wrap counters");
        // and a fresh acquire still accounts correctly afterwards
        let (h2, load) = tracker.acquire(segs, 0, dst);
        assert_eq!(load, 1);
        tracker.release(h2);
        assert!(tracker.is_quiescent());
    }
}
