//! Point-to-point wire model with contention.
//!
//! A message from node A to node B traverses the dimension-ordered route
//! computed by `hpcsim-topo`. Its wire time is
//!
//! ```text
//! t = hops · per_hop + bytes / bw_eff
//! bw_eff = min( link_bw / max_link_load , inj_bw / tx_load , inj_bw / rx_load )
//! ```
//!
//! where the loads count flows concurrently using each resource,
//! *including this one*. The snapshot is taken at injection time — a
//! standard flow-level approximation (flows that finish early make the
//! estimate pessimistic, flows that start later make it optimistic; for
//! the phase-structured codes in the study the two effects largely
//! cancel). On-node peers (VN-mode tasks of one node) bypass the torus
//! entirely via shared memory, which the BG/P system software also does.

use hpcsim_engine::SimTime;
use hpcsim_machine::MachineSpec;
use hpcsim_topo::{LinkId, Torus3D};

/// A registered in-flight flow; pass back to [`FlowTracker::release`].
#[derive(Debug)]
pub struct FlowHandle {
    links: Vec<LinkId>,
    src_node: usize,
    dst_node: usize,
}

/// Concurrent-flow accounting over torus links and node endpoints.
#[derive(Debug, Clone)]
pub struct FlowTracker {
    link_flows: Vec<u32>,
    node_tx: Vec<u32>,
    node_rx: Vec<u32>,
}

impl FlowTracker {
    /// Tracker for a torus of the given size.
    pub fn new(torus: &Torus3D) -> Self {
        FlowTracker {
            link_flows: vec![0; torus.links()],
            node_tx: vec![0; torus.nodes()],
            node_rx: vec![0; torus.nodes()],
        }
    }

    /// Register a flow over `links` from `src_node` to `dst_node`;
    /// returns the handle and the bottleneck concurrency (≥ 1) including
    /// this flow.
    pub fn acquire(&mut self, links: Vec<LinkId>, src_node: usize, dst_node: usize) -> (FlowHandle, u32) {
        self.node_tx[src_node] += 1;
        self.node_rx[dst_node] += 1;
        let mut worst = self.node_tx[src_node].max(self.node_rx[dst_node]);
        for l in &links {
            let c = &mut self.link_flows[l.0];
            *c += 1;
            worst = worst.max(*c);
        }
        (FlowHandle { links, src_node, dst_node }, worst)
    }

    /// Deregister a completed flow.
    pub fn release(&mut self, h: FlowHandle) {
        self.node_tx[h.src_node] -= 1;
        self.node_rx[h.dst_node] -= 1;
        for l in &h.links {
            self.link_flows[l.0] -= 1;
        }
    }

    /// Current flow count on a link (diagnostics/tests).
    pub fn link_load(&self, l: LinkId) -> u32 {
        self.link_flows[l.0]
    }

    /// True when no flows are registered anywhere.
    pub fn is_quiescent(&self) -> bool {
        self.link_flows.iter().all(|&c| c == 0)
            && self.node_tx.iter().all(|&c| c == 0)
            && self.node_rx.iter().all(|&c| c == 0)
    }
}

/// The per-machine point-to-point wire model.
#[derive(Debug, Clone)]
pub struct P2pModel {
    torus: Torus3D,
    link_bw: f64,
    inj_bw_oneway: f64,
    per_hop: SimTime,
    shm_latency: SimTime,
    shm_bw: f64,
    /// Adaptive-routing path diversity (≥ 1): contending flows spread
    /// over this many effective routes.
    diversity: f64,
    /// Background flows per link from other jobs sharing the machine
    /// (non-zero for fragmented XT allocations).
    ambient: f64,
}

impl P2pModel {
    /// Build from a machine spec and the job's torus.
    pub fn new(machine: &MachineSpec, torus: Torus3D) -> Self {
        P2pModel {
            torus,
            link_bw: machine.nic.torus_link_bw,
            // Table 1 injection numbers are bidirectional aggregates.
            inj_bw_oneway: machine.nic.injection_bw / 2.0,
            per_hop: machine.nic.per_hop,
            // On-node peers copy through shared memory: a cache-line
            // handshake plus a memcpy at a fraction of node bandwidth.
            shm_latency: SimTime::from_ns(500),
            shm_bw: machine.mem.bw_bytes / 4.0,
            diversity: machine.nic.route_diversity.max(1.0),
            ambient: 0.0,
        }
    }

    /// Add `ambient` background flows per link (other jobs on a shared,
    /// fragmented machine).
    pub fn with_ambient(mut self, ambient: f64) -> Self {
        self.ambient = ambient.max(0.0);
        self
    }

    /// Bandwidth share divisor for a bottleneck concurrency of `load`
    /// flows. Contending flows only overlap for part of their lifetimes
    /// (the half-overlap approximation), and adaptive routing spreads
    /// them over `diversity` effective paths.
    fn share_divisor(&self, load: u32) -> f64 {
        let eff_load = 1.0 + (load.max(1) as f64 - 1.0) / self.diversity;
        // Ambient traffic from co-resident jobs taxes every link the
        // fragmented job touches, multiplicatively: those links are not
        // spare capacity, they belong to someone else's partition.
        (1.0 + eff_load) / 2.0 * (1.0 + self.ambient)
    }

    /// The torus this model routes on.
    pub fn torus(&self) -> &Torus3D {
        &self.torus
    }

    /// Contention-free wire time from `src_node` to `dst_node`.
    pub fn wire_time(&self, src_node: usize, dst_node: usize, bytes: u64) -> SimTime {
        if src_node == dst_node {
            return self.shm_latency + SimTime::from_secs(bytes as f64 / self.shm_bw);
        }
        let hops = self.torus.hops(self.torus.coord(src_node), self.torus.coord(dst_node));
        let bw = self.link_bw.min(self.inj_bw_oneway) / self.share_divisor(1);
        self.per_hop * hops as u64 + SimTime::from_secs(bytes as f64 / bw)
    }

    /// Wire time under current contention; registers the flow in
    /// `tracker`. Returns the duration and the handle to release at
    /// completion (`None` for the shared-memory path, which is not
    /// tracked).
    pub fn wire_time_contended(
        &self,
        tracker: &mut FlowTracker,
        src_node: usize,
        dst_node: usize,
        bytes: u64,
    ) -> (SimTime, Option<FlowHandle>) {
        if src_node == dst_node {
            return (self.shm_latency + SimTime::from_secs(bytes as f64 / self.shm_bw), None);
        }
        let src = self.torus.coord(src_node);
        let dst = self.torus.coord(dst_node);
        let hops = self.torus.hops(src, dst);
        let route = self.torus.route(src, dst);
        let (handle, load) = tracker.acquire(route, src_node, dst_node);
        let bw = self.link_bw.min(self.inj_bw_oneway) / self.share_divisor(load);
        let t = self.per_hop * hops as u64 + SimTime::from_secs(bytes as f64 / bw);
        (t, Some(handle))
    }

    /// Mean nearest-neighbour (1 hop) small-message wire time — a
    /// convenience for calibration tests.
    pub fn nn_latency(&self) -> SimTime {
        self.per_hop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};
    use hpcsim_topo::Direction;

    fn bgp_model() -> P2pModel {
        P2pModel::new(&bluegene_p(), Torus3D::new([8, 8, 8]))
    }

    #[test]
    fn wire_time_scales_with_hops_and_bytes() {
        let m = bgp_model();
        let one_hop_small = m.wire_time(0, 1, 8);
        let far_small = m.wire_time(0, m.torus().index([4, 4, 4]), 8);
        assert!(far_small > one_hop_small);
        let one_hop_big = m.wire_time(0, 1, 1 << 20);
        assert!(one_hop_big > one_hop_small * 100);
    }

    #[test]
    fn bgp_large_message_rate_near_425mb() {
        let m = bgp_model();
        let bytes = 64 * 1024 * 1024u64;
        let t = m.wire_time(0, 1, bytes).as_secs();
        let rate = bytes as f64 / t;
        assert!(rate > 0.9 * 425e6 && rate <= 425e6, "rate {rate:.3e}");
    }

    #[test]
    fn xt_large_message_rate_is_higher() {
        let xt = P2pModel::new(&xt4_qc(), Torus3D::new([8, 8, 8]));
        let bgp = bgp_model();
        let bytes = 16 * 1024 * 1024u64;
        let t_xt = xt.wire_time(0, 1, bytes).as_secs();
        let t_bgp = bgp.wire_time(0, 1, bytes).as_secs();
        assert!(t_xt < t_bgp / 4.0, "XT bandwidth strength: {t_xt} vs {t_bgp}");
    }

    #[test]
    fn on_node_messages_bypass_torus() {
        let m = bgp_model();
        let shm = m.wire_time(5, 5, 4096);
        let wire = m.wire_time(5, 6, 4096);
        assert!(shm < wire);
    }

    #[test]
    fn contention_shares_bandwidth() {
        // XT (deterministic routing): a second flow over the same link
        // sees the half-overlap share, ~1.5x the solo time.
        let m = P2pModel::new(&xt4_qc(), Torus3D::new([8, 8, 8]));
        let mut tracker = FlowTracker::new(m.torus());
        let bytes = 1 << 22;
        let (t1, h1) = m.wire_time_contended(&mut tracker, 0, 1, bytes);
        let (t2, h2) = m.wire_time_contended(&mut tracker, 0, 1, bytes);
        let ratio = t2.as_secs() / t1.as_secs();
        assert!(ratio > 1.3 && ratio < 1.7, "share ratio {ratio:.2}");
        tracker.release(h1.unwrap());
        tracker.release(h2.unwrap());
        assert!(tracker.is_quiescent());
        // BG/P's adaptive routing takes a smaller hit
        let b = bgp_model();
        let mut tr2 = FlowTracker::new(b.torus());
        let (b1, g1) = b.wire_time_contended(&mut tr2, 0, 1, bytes);
        let (b2, g2) = b.wire_time_contended(&mut tr2, 0, 1, bytes);
        let bratio = b2.as_secs() / b1.as_secs();
        assert!(bratio > 1.05 && bratio < ratio, "BG/P adaptive ratio {bratio:.2}");
        tr2.release(g1.unwrap());
        tr2.release(g2.unwrap());
    }

    #[test]
    fn ambient_load_slows_everything() {
        let quiet = P2pModel::new(&xt4_qc(), Torus3D::new([8, 8, 8]));
        let busy = P2pModel::new(&xt4_qc(), Torus3D::new([8, 8, 8])).with_ambient(1.0);
        let bytes = 1 << 20;
        assert!(busy.wire_time(0, 1, bytes) > quiet.wire_time(0, 1, bytes));
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let m = bgp_model();
        let mut tracker = FlowTracker::new(m.torus());
        let a = m.torus().index([0, 0, 0]);
        let b = m.torus().index([1, 0, 0]);
        let c = m.torus().index([0, 4, 4]);
        let d = m.torus().index([1, 4, 4]);
        let (t1, h1) = m.wire_time_contended(&mut tracker, a, b, 1 << 20);
        let (t2, h2) = m.wire_time_contended(&mut tracker, c, d, 1 << 20);
        assert_eq!(t1, t2, "disjoint flows must be independent");
        tracker.release(h1.unwrap());
        tracker.release(h2.unwrap());
    }

    #[test]
    fn endpoint_contention_counts() {
        // Two flows out of the same node in different directions still
        // share injection bandwidth.
        let m = bgp_model();
        let mut tracker = FlowTracker::new(m.torus());
        let a = m.torus().index([0, 0, 0]);
        let xp = m.torus().index([1, 0, 0]);
        let yp = m.torus().index([0, 1, 0]);
        let (_t1, h1) = m.wire_time_contended(&mut tracker, a, xp, 1 << 20);
        let (t2, _h2) = m.wire_time_contended(&mut tracker, a, yp, 1 << 20);
        let solo = m.wire_time(a, yp, 1 << 20);
        assert!(t2 > solo, "shared injection must slow the second flow");
        tracker.release(h1.unwrap());
    }

    #[test]
    fn tracker_link_load_roundtrip() {
        let t = Torus3D::new([4, 4, 4]);
        let mut tracker = FlowTracker::new(&t);
        let route = t.route([0, 0, 0], [2, 0, 0]);
        let first = route[0];
        let (h, load) = tracker.acquire(route, 0, t.index([2, 0, 0]));
        assert_eq!(load, 1);
        assert_eq!(tracker.link_load(first), 1);
        tracker.release(h);
        assert_eq!(tracker.link_load(first), 0);
        assert!(tracker.is_quiescent());
    }

    #[test]
    fn per_hop_latency_dominates_small_messages() {
        let m = bgp_model();
        let near = m.wire_time(0, 1, 8);
        let far = m.wire_time(0, m.torus().index([4, 4, 4]), 8);
        // 12 hops vs 1 hop at 64 ns/hop
        let delta = (far - near).as_secs();
        assert!((delta - 11.0 * 64e-9).abs() < 1e-9, "delta {delta}");
        let _ = Direction::XPlus; // silence unused import lint paths
    }
}
