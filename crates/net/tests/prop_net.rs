//! Property tests for the network models: wire times are monotone and
//! metric-like, flow tracking conserves, collective models are monotone
//! in payload and sane in scale.

use hpcsim_engine::SimTime;
use hpcsim_machine::registry::{all_machines, bluegene_p, xt4_qc};
use hpcsim_machine::MachineSpec;
use hpcsim_net::{CollectiveModel, CollectiveOp, DType, FlowHandle, FlowTracker, P2pModel};
use hpcsim_topo::Torus3D;
use proptest::prelude::*;

fn machine_strategy() -> impl Strategy<Value = MachineSpec> {
    (0usize..5).prop_map(|i| all_machines().swap_remove(i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Wire time is monotone in payload for any machine and node pair.
    #[test]
    fn wire_time_monotone_in_bytes(
        m in machine_strategy(),
        src: usize, dst: usize,
        b1 in 0u64..1 << 24, b2 in 0u64..1 << 24
    ) {
        let t = Torus3D::new([4, 4, 4]);
        let model = P2pModel::new(&m, t);
        let (src, dst) = (src % t.nodes(), dst % t.nodes());
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(model.wire_time(src, dst, lo) <= model.wire_time(src, dst, hi));
    }

    /// Acquire/release always returns the tracker to quiescence, for any
    /// interleaving of flows.
    #[test]
    fn tracker_conserves(flows in prop::collection::vec((0usize..64, 0usize..64), 1..40)) {
        let t = Torus3D::new([4, 4, 4]);
        let mut tracker = FlowTracker::new(&t);
        let mut handles = Vec::new();
        for &(a, b) in &flows {
            let (a, b) = (a % t.nodes(), b % t.nodes());
            if a == b { continue; }
            let segs = t.route_segs(t.coord(a), t.coord(b));
            let (h, load) = tracker.acquire(segs, a, b);
            prop_assert!(load >= 1);
            handles.push(h);
        }
        for h in handles {
            tracker.release(h);
        }
        prop_assert!(tracker.is_quiescent());
    }

    /// The difference-array bulk load is observationally identical to a
    /// loop of sequential acquires: same load on every link and
    /// endpoint counter, same peak as the worst per-flow bottleneck,
    /// and a bulk release restores quiescence. Random torus shapes
    /// (including rings of length 1 and even rings with antipodes) and
    /// random flow sets.
    #[test]
    fn phase_load_equals_sequential(
        dx in 1usize..7, dy in 1usize..7, dz in 1usize..7,
        flows in prop::collection::vec((0usize..4096, 0usize..4096), 1..60)
    ) {
        let t = Torus3D::new([dx, dy, dz]);
        let handles: Vec<FlowHandle> = flows.iter()
            .map(|&(a, b)| (a % t.nodes(), b % t.nodes()))
            .map(|(a, b)| FlowHandle::new(t.route_segs(t.coord(a), t.coord(b)), a, b))
            .collect();

        let mut seq = FlowTracker::new(&t);
        let mut worst = 0u32;
        for h in &handles {
            let (_, load) = seq.acquire(h.segs(), h.src_node(), h.dst_node());
            worst = worst.max(load);
        }

        let mut bulk = FlowTracker::new(&t);
        let peak = bulk.acquire_phase(&handles);
        prop_assert_eq!(peak, worst);
        for node in 0..t.nodes() {
            prop_assert_eq!(bulk.tx_load(node), seq.tx_load(node), "tx at node {}", node);
            prop_assert_eq!(bulk.rx_load(node), seq.rx_load(node), "rx at node {}", node);
            for dir in 0..6 {
                let l = hpcsim_topo::LinkId(node * 6 + dir);
                prop_assert_eq!(bulk.link_load(l), seq.link_load(l), "link {}/{}", node, dir);
            }
        }
        bulk.release_phase(&handles);
        prop_assert!(bulk.is_quiescent());
    }

    /// More concurrent flows never make a new flow faster.
    #[test]
    fn contention_monotone(n_existing in 0usize..6) {
        let m = P2pModel::new(&xt4_qc(), Torus3D::new([4, 4, 4]));
        let t = *m.torus();
        let mut tracker = FlowTracker::new(&t);
        let mut handles = Vec::new();
        let mut prev = SimTime::ZERO;
        for i in 0..=n_existing {
            let (dur, h) = m.wire_time_contended(&mut tracker, 0, 1, 1 << 20);
            prop_assert!(dur >= prev, "flow {i} got faster under load");
            prev = dur;
            if let Some(h) = h { handles.push(h); }
        }
        for h in handles { tracker.release(h); }
    }

    /// Collective time is monotone in payload for every op and machine.
    #[test]
    fn collectives_monotone_in_payload(
        m in machine_strategy(),
        ranks in 2usize..4096,
        b1 in 1u64..1 << 22, b2 in 1u64..1 << 22
    ) {
        let model = CollectiveModel::new(&m, ranks, 4);
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        for op in [
            |b| CollectiveOp::Bcast { bytes: b },
            |b| CollectiveOp::Allreduce { bytes: b, dtype: DType::F64 },
            |b| CollectiveOp::Reduce { bytes: b, dtype: DType::F64 },
            |b| CollectiveOp::Allgather { bytes_per_rank: b },
        ] {
            prop_assert!(model.time(op(lo)) <= model.time(op(hi)));
        }
    }

    /// Collective times are strictly positive and finite for any size.
    #[test]
    fn collectives_finite(ranks in 1usize..40_000, bytes in 0u64..1 << 26) {
        let model = CollectiveModel::new(&bluegene_p(), ranks, 4);
        for op in [
            CollectiveOp::Barrier,
            CollectiveOp::Bcast { bytes },
            CollectiveOp::Allreduce { bytes, dtype: DType::F64 },
            CollectiveOp::Allreduce { bytes, dtype: DType::F32 },
            CollectiveOp::Alltoall { bytes_per_pair: bytes >> 10 },
        ] {
            let t = model.time(op);
            prop_assert!(t > SimTime::ZERO);
            prop_assert!(!t.is_never());
        }
    }

    /// Sub-linear growth in ranks: doubling the communicator at fixed
    /// payload never more than triples a barrier/allreduce.
    #[test]
    fn collectives_scale_gracefully(m in machine_strategy(), ranks in 2usize..8192) {
        let small = CollectiveModel::new(&m, ranks, 4);
        let big = CollectiveModel::new(&m, ranks * 2, 4);
        let op = CollectiveOp::Allreduce { bytes: 1024, dtype: DType::F64 };
        prop_assert!(big.time(op) <= small.time(op).scale(3.0) + SimTime::from_us(2));
    }
}
