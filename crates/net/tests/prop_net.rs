//! Property tests for the network models: wire times are monotone and
//! metric-like, flow tracking conserves, collective models are monotone
//! in payload and sane in scale.

use hpcsim_engine::SimTime;
use hpcsim_machine::registry::{all_machines, bluegene_p, xt4_qc};
use hpcsim_machine::MachineSpec;
use hpcsim_net::{CollectiveModel, CollectiveOp, DType, FlowTracker, P2pModel};
use hpcsim_topo::Torus3D;
use proptest::prelude::*;

fn machine_strategy() -> impl Strategy<Value = MachineSpec> {
    (0usize..5).prop_map(|i| all_machines().swap_remove(i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Wire time is monotone in payload for any machine and node pair.
    #[test]
    fn wire_time_monotone_in_bytes(
        m in machine_strategy(),
        src: usize, dst: usize,
        b1 in 0u64..1 << 24, b2 in 0u64..1 << 24
    ) {
        let t = Torus3D::new([4, 4, 4]);
        let model = P2pModel::new(&m, t);
        let (src, dst) = (src % t.nodes(), dst % t.nodes());
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(model.wire_time(src, dst, lo) <= model.wire_time(src, dst, hi));
    }

    /// Acquire/release always returns the tracker to quiescence, for any
    /// interleaving of flows.
    #[test]
    fn tracker_conserves(flows in prop::collection::vec((0usize..64, 0usize..64), 1..40)) {
        let t = Torus3D::new([4, 4, 4]);
        let mut tracker = FlowTracker::new(&t);
        let mut handles = Vec::new();
        for &(a, b) in &flows {
            let (a, b) = (a % t.nodes(), b % t.nodes());
            if a == b { continue; }
            let route = t.route(t.coord(a), t.coord(b));
            let (h, load) = tracker.acquire(route, a, b);
            prop_assert!(load >= 1);
            handles.push(h);
        }
        for h in handles {
            tracker.release(h);
        }
        prop_assert!(tracker.is_quiescent());
    }

    /// More concurrent flows never make a new flow faster.
    #[test]
    fn contention_monotone(n_existing in 0usize..6) {
        let m = P2pModel::new(&xt4_qc(), Torus3D::new([4, 4, 4]));
        let t = *m.torus();
        let mut tracker = FlowTracker::new(&t);
        let mut handles = Vec::new();
        let mut prev = SimTime::ZERO;
        for i in 0..=n_existing {
            let (dur, h) = m.wire_time_contended(&mut tracker, 0, 1, 1 << 20);
            prop_assert!(dur >= prev, "flow {i} got faster under load");
            prev = dur;
            if let Some(h) = h { handles.push(h); }
        }
        for h in handles { tracker.release(h); }
    }

    /// Collective time is monotone in payload for every op and machine.
    #[test]
    fn collectives_monotone_in_payload(
        m in machine_strategy(),
        ranks in 2usize..4096,
        b1 in 1u64..1 << 22, b2 in 1u64..1 << 22
    ) {
        let model = CollectiveModel::new(&m, ranks, 4);
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        for op in [
            |b| CollectiveOp::Bcast { bytes: b },
            |b| CollectiveOp::Allreduce { bytes: b, dtype: DType::F64 },
            |b| CollectiveOp::Reduce { bytes: b, dtype: DType::F64 },
            |b| CollectiveOp::Allgather { bytes_per_rank: b },
        ] {
            prop_assert!(model.time(op(lo)) <= model.time(op(hi)));
        }
    }

    /// Collective times are strictly positive and finite for any size.
    #[test]
    fn collectives_finite(ranks in 1usize..40_000, bytes in 0u64..1 << 26) {
        let model = CollectiveModel::new(&bluegene_p(), ranks, 4);
        for op in [
            CollectiveOp::Barrier,
            CollectiveOp::Bcast { bytes },
            CollectiveOp::Allreduce { bytes, dtype: DType::F64 },
            CollectiveOp::Allreduce { bytes, dtype: DType::F32 },
            CollectiveOp::Alltoall { bytes_per_pair: bytes >> 10 },
        ] {
            let t = model.time(op);
            prop_assert!(t > SimTime::ZERO);
            prop_assert!(!t.is_never());
        }
    }

    /// Sub-linear growth in ranks: doubling the communicator at fixed
    /// payload never more than triples a barrier/allreduce.
    #[test]
    fn collectives_scale_gracefully(m in machine_strategy(), ranks in 2usize..8192) {
        let small = CollectiveModel::new(&m, ranks, 4);
        let big = CollectiveModel::new(&m, ranks * 2, 4);
        let op = CollectiveOp::Allreduce { bytes: 1024, dtype: DType::F64 };
        prop_assert!(big.time(op) <= small.time(op).scale(3.0) + SimTime::from_us(2));
    }
}
