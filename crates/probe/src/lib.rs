//! # hpcsim-probe
//!
//! Zero-cost-when-disabled observability for the simulator stack.
//!
//! The replay engine and the scenario runners are generic over a
//! [`Tracer`]. The default instantiation is [`NoopTracer`], whose
//! associated `ENABLED` constant is `false`: every hook site is guarded
//! by `if T::ENABLED { ... }`, so monomorphization deletes the hooks and
//! the disabled path compiles to exactly the pre-probe code (a criterion
//! guard in `hpcsim-bench` pins the <2% bound, and a `PanickingTracer`
//! test pins that no hook is reachable when disabled).
//!
//! The enabled instantiation is [`RingRecorder`], which captures:
//!
//! * **spans** — simulated-time intervals on two tracks per rank: a
//!   *cpu* track whose spans tile `[0, finish]` exactly (compute, MPI
//!   overheads, waits), and a *net* track of in-flight message intervals
//!   (wire occupancy, rendezvous handshakes, unexpected-message copies);
//! * **link deltas** — ±1 flow events per torus link, integrated into
//!   utilization and peak-load heatmaps at export time;
//! * **gauges** — high-water marks (event-queue depth, match-queue
//!   occupancy) folded with `max`.
//!
//! Exports: Chrome `trace_event` JSON (Perfetto-loadable) and compact
//! CSV via [`chrome`], per-scenario metrics JSON via [`metrics`].

pub mod chrome;
pub mod metrics;
pub mod recorder;

pub use chrome::{
    chrome_trace, parse_json, trace_csv, validate_trace, JsonValue, TraceStats, MAX_JSON_DEPTH,
};
pub use metrics::{metrics_report_json, MetricValue, MetricsRegistry};
pub use recorder::{LinkUse, RingRecorder, TimeBreakdown};

use hpcsim_engine::SimTime;

/// Sentinel for "no peer rank" on spans that are not tied to a message.
pub const NO_PEER: u32 = u32::MAX;

/// What a span measures. The first six kinds live on a rank's *cpu*
/// track and tile `[0, finish]` without gaps or overlaps; the rest
/// live on the rank's *net* track and may overlap the cpu track (they
/// describe in-flight network state, not processor time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Modeled kernel execution (`Op::Compute`).
    Compute,
    /// Fixed busy delay (`Op::Delay`).
    Delay,
    /// NIC send overhead (`o_send`) charged at `Isend`.
    SendOverhead,
    /// NIC receive overhead (`o_recv`) charged at `Irecv`.
    RecvOverhead,
    /// Blocked on an unmatched request (`Op::Wait` / resume gap).
    Wait,
    /// Blocked inside a collective until `duration` past the last arrival.
    CollectiveWait,
    /// Payload on the wire: injection to arrival. `aux` carries the
    /// contention-free wire time, so `dur - aux` is contention stretch.
    MsgWire,
    /// Rendezvous handshake round-trip before the payload drains.
    Rendezvous,
    /// Unexpected-message copy on the receiver (late-posted receive).
    UnexpectedCopy,
    /// Retransmit delay under fault injection: timeout + backoff spent
    /// re-sending lost attempts before the payload finally goes out.
    Retransmit,
}

impl SpanKind {
    /// Display label (also the Chrome event name).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Delay => "delay",
            SpanKind::SendOverhead => "send_overhead",
            SpanKind::RecvOverhead => "recv_overhead",
            SpanKind::Wait => "wait",
            SpanKind::CollectiveWait => "collective_wait",
            SpanKind::MsgWire => "msg_wire",
            SpanKind::Rendezvous => "rendezvous",
            SpanKind::UnexpectedCopy => "unexpected_copy",
            SpanKind::Retransmit => "retransmit",
        }
    }

    /// True for spans on the cpu track (they tile the rank clock).
    pub fn is_cpu(self) -> bool {
        !matches!(
            self,
            SpanKind::MsgWire
                | SpanKind::Rendezvous
                | SpanKind::UnexpectedCopy
                | SpanKind::Retransmit
        )
    }
}

/// One recorded simulated-time interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Owning rank.
    pub rank: u32,
    /// Peer rank for message spans ([`NO_PEER`] otherwise).
    pub peer: u32,
    /// MPI tag for message spans (0 otherwise).
    pub tag: u32,
    /// Payload bytes for message spans (0 otherwise).
    pub bytes: u64,
    /// What the interval measures.
    pub kind: SpanKind,
    /// Interval start (virtual time).
    pub t0: SimTime,
    /// Interval end (virtual time), `t1 >= t0`.
    pub t1: SimTime,
    /// Kind-specific extra duration ([`SpanKind::MsgWire`]: the
    /// contention-free wire time; zero otherwise).
    pub aux: SimTime,
}

impl SpanEvent {
    /// A plain (non-message) span.
    pub fn new(rank: u32, kind: SpanKind, t0: SimTime, t1: SimTime) -> Self {
        SpanEvent { rank, peer: NO_PEER, tag: 0, bytes: 0, kind, t0, t1, aux: SimTime::ZERO }
    }

    /// Attach message metadata.
    pub fn with_msg(mut self, peer: u32, tag: u32, bytes: u64) -> Self {
        self.peer = peer;
        self.tag = tag;
        self.bytes = bytes;
        self
    }

    /// Attach the kind-specific auxiliary duration.
    pub fn with_aux(mut self, aux: SimTime) -> Self {
        self.aux = aux;
        self
    }

    /// Span duration.
    pub fn dur(&self) -> SimTime {
        self.t1.saturating_sub(self.t0)
    }
}

/// High-water-mark gauges folded with `max` by the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Peak pending-event count in the replay `EventQueue`.
    EventQueueDepth = 0,
    /// Peak live posted-receive entries on any rank's match table.
    PostedMatchDepth = 1,
    /// Peak live unexpected-arrival entries on any rank's match table.
    ArrivedMatchDepth = 2,
    /// Dead torus links in the active fault plan (0 without faults).
    LinkOutages = 3,
    /// Total lost transmission attempts replayed under fault injection.
    Retransmits = 4,
    /// Flow-counter release underflows absorbed by the tracker (a
    /// bookkeeping bug surfaced instead of silently wrapping).
    FlowUnderflows = 5,
}

/// Number of distinct [`GaugeId`] values (recorder storage size).
pub const GAUGE_COUNT: usize = 6;

impl GaugeId {
    /// All gauges, in storage order.
    pub fn all() -> [GaugeId; GAUGE_COUNT] {
        [
            GaugeId::EventQueueDepth,
            GaugeId::PostedMatchDepth,
            GaugeId::ArrivedMatchDepth,
            GaugeId::LinkOutages,
            GaugeId::Retransmits,
            GaugeId::FlowUnderflows,
        ]
    }

    /// Metric name for JSON export.
    pub fn label(self) -> &'static str {
        match self {
            GaugeId::EventQueueDepth => "event_queue_depth_peak",
            GaugeId::PostedMatchDepth => "posted_match_depth_peak",
            GaugeId::ArrivedMatchDepth => "arrived_match_depth_peak",
            GaugeId::LinkOutages => "link_outages",
            GaugeId::Retransmits => "retransmits",
            GaugeId::FlowUnderflows => "flow_underflows",
        }
    }
}

/// The observability sink. Hot paths are generic over `T: Tracer` and
/// guard every hook with `if T::ENABLED`, so a `false` constant deletes
/// the instrumentation at monomorphization time.
pub trait Tracer {
    /// Whether hooks are live. Hook sites MUST test this before calling
    /// any other method (and before computing hook arguments).
    const ENABLED: bool;

    /// Record a simulated-time span.
    fn span(&mut self, ev: SpanEvent);

    /// Record a flow count change (`delta` = ±1) on torus link `link`
    /// at virtual time `t`. Deltas may arrive out of time order (rank
    /// clocks run ahead of the global event clock); consumers sort.
    fn link_delta(&mut self, link: u32, t: SimTime, delta: i8);

    /// Fold a gauge observation (kept as the running max).
    fn gauge(&mut self, id: GaugeId, value: u64);
}

/// The disabled tracer: `ENABLED = false`, all methods empty.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn span(&mut self, _ev: SpanEvent) {}

    #[inline(always)]
    fn link_delta(&mut self, _link: u32, _t: SimTime, _delta: i8) {}

    #[inline(always)]
    fn gauge(&mut self, _id: GaugeId, _value: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_partition_into_tracks() {
        let cpu = [
            SpanKind::Compute,
            SpanKind::Delay,
            SpanKind::SendOverhead,
            SpanKind::RecvOverhead,
            SpanKind::Wait,
            SpanKind::CollectiveWait,
        ];
        let net = [
            SpanKind::MsgWire,
            SpanKind::Rendezvous,
            SpanKind::UnexpectedCopy,
            SpanKind::Retransmit,
        ];
        assert!(cpu.iter().all(|k| k.is_cpu()));
        assert!(net.iter().all(|k| !k.is_cpu()));
    }

    #[test]
    fn span_builder_round_trips() {
        let ev = SpanEvent::new(3, SpanKind::MsgWire, SimTime::from_us(1), SimTime::from_us(5))
            .with_msg(7, 42, 4096)
            .with_aux(SimTime::from_us(2));
        assert_eq!(ev.rank, 3);
        assert_eq!(ev.peer, 7);
        assert_eq!(ev.tag, 42);
        assert_eq!(ev.bytes, 4096);
        assert_eq!(ev.dur(), SimTime::from_us(4));
        assert_eq!(ev.aux, SimTime::from_us(2));
    }

    #[test]
    fn gauge_ids_are_dense() {
        for (i, g) in GaugeId::all().into_iter().enumerate() {
            assert_eq!(g as usize, i);
        }
    }

    #[test]
    fn noop_tracer_is_disabled() {
        const { assert!(!NoopTracer::ENABLED) };
        let mut t = NoopTracer;
        t.span(SpanEvent::new(0, SpanKind::Compute, SimTime::ZERO, SimTime::SEC));
        t.link_delta(0, SimTime::ZERO, 1);
        t.gauge(GaugeId::EventQueueDepth, 9);
    }
}
