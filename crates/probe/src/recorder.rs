//! The ring-buffered recorder: the enabled [`Tracer`] instantiation.

use crate::{GaugeId, SpanEvent, SpanKind, Tracer, GAUGE_COUNT};
use hpcsim_engine::SimTime;

/// Default span capacity: enough for every quick-scale scenario in the
/// battery; past it the ring overwrites oldest-first and counts drops.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 20;

/// Ring-buffered span recorder with link-delta and gauge side channels.
///
/// Spans land in a bounded ring (oldest overwritten past capacity, so a
/// runaway scenario degrades to a sliding window instead of OOM). Link
/// deltas are kept raw and unsorted — rank-local clocks run ahead of the
/// global event clock, so ordering is deferred to [`RingRecorder::link_usage`].
/// Gauges fold with `max`.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    cap: usize,
    spans: Vec<SpanEvent>,
    /// Next overwrite slot once the ring is full.
    write: usize,
    total_spans: u64,
    unexpected: u64,
    link_deltas: Vec<(SimTime, u32, i8)>,
    gauges: [u64; GAUGE_COUNT],
}

impl Default for RingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-category totals over a recorder's spans (summed across ranks).
///
/// The first four fields partition processor time: per rank, their
/// per-rank restriction sums exactly to that rank's finish time. The
/// last four decompose network behaviour and overlap the cpu categories
/// (a `wait` usually *is* wire + contention + handshake seen from the
/// blocked side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Kernel execution + fixed delays.
    pub compute: SimTime,
    /// NIC send/receive overheads.
    pub overhead: SimTime,
    /// Blocked on point-to-point requests.
    pub wait: SimTime,
    /// Blocked in collectives.
    pub collective: SimTime,
    /// Contention-free wire occupancy of all messages.
    pub wire: SimTime,
    /// Wire stretch due to link/endpoint contention.
    pub contention: SimTime,
    /// Rendezvous handshake round-trips.
    pub handshake: SimTime,
    /// Unexpected-message copies.
    pub copy: SimTime,
    /// Retransmit timeout + backoff under fault injection. Not part of
    /// [`TimeBreakdown::fields`]: the report table keeps its pristine
    /// eight columns, and this is zero unless faults are active.
    pub retransmit: SimTime,
}

impl TimeBreakdown {
    /// All-zero breakdown.
    pub const ZERO: TimeBreakdown = TimeBreakdown {
        compute: SimTime::ZERO,
        overhead: SimTime::ZERO,
        wait: SimTime::ZERO,
        collective: SimTime::ZERO,
        wire: SimTime::ZERO,
        contention: SimTime::ZERO,
        handshake: SimTime::ZERO,
        copy: SimTime::ZERO,
        retransmit: SimTime::ZERO,
    };

    /// Total processor time (equals the sum of per-rank finish times
    /// when the recorder saw a whole run).
    pub fn cpu_total(&self) -> SimTime {
        self.compute + self.overhead + self.wait + self.collective
    }

    /// `(label, value)` pairs in report order.
    pub fn fields(&self) -> [(&'static str, SimTime); 8] {
        [
            ("compute", self.compute),
            ("overhead", self.overhead),
            ("wait", self.wait),
            ("collective", self.collective),
            ("wire", self.wire),
            ("contention", self.contention),
            ("handshake", self.handshake),
            ("copy", self.copy),
        ]
    }
}

/// Per-link utilization summary derived from the raw ±1 deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkUse {
    /// Linear link id (`node * 6 + direction`).
    pub link: u32,
    /// Peak concurrent flows observed on the link.
    pub peak: u32,
    /// Time-average concurrent flows over `[0, horizon]`.
    pub mean: f64,
}

impl RingRecorder {
    /// Recorder with the default span capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// Recorder with an explicit span capacity (`cap >= 1`).
    pub fn with_capacity(cap: usize) -> Self {
        RingRecorder {
            cap: cap.max(1),
            spans: Vec::new(),
            write: 0,
            total_spans: 0,
            unexpected: 0,
            link_deltas: Vec::new(),
            gauges: [0; GAUGE_COUNT],
        }
    }

    fn push_span(&mut self, ev: SpanEvent) {
        if self.spans.len() < self.cap {
            self.spans.push(ev);
        } else {
            self.spans[self.write] = ev;
            self.write = (self.write + 1) % self.cap;
        }
    }

    /// Retained spans. Not chronological once the ring has wrapped;
    /// consumers sort by their own keys.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// Total spans offered (including any overwritten).
    pub fn total_spans(&self) -> u64 {
        self.total_spans
    }

    /// Spans lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.total_spans - self.spans.len() as u64
    }

    /// Unexpected-message copies observed (counted outside the ring, so
    /// overwrite cannot lose them).
    pub fn unexpected(&self) -> u64 {
        self.unexpected
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id as usize]
    }

    /// Raw link deltas `(time, link, ±1)`, unsorted.
    pub fn link_deltas(&self) -> &[(SimTime, u32, i8)] {
        &self.link_deltas
    }

    /// Fold another recorder in (deterministic: preserves `other`'s
    /// internal order after `self`'s). Used to merge per-worker
    /// recorders from a parmap fan-out in input order.
    pub fn merge(&mut self, other: &RingRecorder) {
        for ev in &other.spans {
            self.push_span(*ev);
        }
        self.total_spans += other.total_spans;
        self.unexpected += other.unexpected;
        self.link_deltas.extend_from_slice(&other.link_deltas);
        for i in 0..GAUGE_COUNT {
            self.gauges[i] = self.gauges[i].max(other.gauges[i]);
        }
    }

    /// Sum retained spans into per-category totals.
    pub fn breakdown(&self) -> TimeBreakdown {
        let mut b = TimeBreakdown::ZERO;
        for ev in &self.spans {
            let d = ev.dur();
            match ev.kind {
                SpanKind::Compute | SpanKind::Delay => b.compute += d,
                SpanKind::SendOverhead | SpanKind::RecvOverhead => b.overhead += d,
                SpanKind::Wait => b.wait += d,
                SpanKind::CollectiveWait => b.collective += d,
                SpanKind::MsgWire => {
                    b.wire += ev.aux.min(d);
                    b.contention += d.saturating_sub(ev.aux);
                }
                SpanKind::Rendezvous => b.handshake += d,
                SpanKind::UnexpectedCopy => b.copy += d,
                SpanKind::Retransmit => b.retransmit += d,
            }
        }
        b
    }

    /// Per-rank sums of cpu-track spans, indexed by rank. When the ring
    /// has not dropped anything, entry `r` equals rank `r`'s finish time
    /// exactly (the cpu track tiles `[0, finish]`).
    pub fn cpu_sums(&self) -> Vec<SimTime> {
        let ranks = self.spans.iter().map(|e| e.rank as usize + 1).max().unwrap_or(0);
        let mut sums = vec![SimTime::ZERO; ranks];
        for ev in &self.spans {
            if ev.kind.is_cpu() {
                sums[ev.rank as usize] += ev.dur();
            }
        }
        sums
    }

    /// Integrate the link deltas into per-link peak and mean loads over
    /// `[0, horizon]`. Only links with at least one delta appear, in
    /// ascending link order. Releases sort before acquires at equal
    /// timestamps so back-to-back reuse does not fake a peak.
    pub fn link_usage(&self, horizon: SimTime) -> Vec<LinkUse> {
        let mut deltas = self.link_deltas.clone();
        deltas.sort_unstable_by_key(|&(t, link, d)| (link, t, d));
        let mut out = Vec::new();
        let mut i = 0;
        while i < deltas.len() {
            let link = deltas[i].1;
            let mut load: i64 = 0;
            let mut peak: i64 = 0;
            let mut last_t = SimTime::ZERO;
            let mut integral: u128 = 0; // load × picoseconds
            while i < deltas.len() && deltas[i].1 == link {
                let (t, _, d) = deltas[i];
                if load > 0 {
                    integral += load as u128 * (t.saturating_sub(last_t)).as_ps() as u128;
                }
                last_t = t;
                load += d as i64;
                peak = peak.max(load);
                i += 1;
            }
            // any flow still open integrates to the horizon
            if load > 0 && horizon > last_t {
                integral += load as u128 * (horizon.saturating_sub(last_t)).as_ps() as u128;
            }
            let mean = if horizon.as_ps() == 0 {
                0.0
            } else {
                integral as f64 / horizon.as_ps() as f64
            };
            out.push(LinkUse { link, peak: peak.max(0) as u32, mean });
        }
        out
    }
}

impl Tracer for RingRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn span(&mut self, ev: SpanEvent) {
        debug_assert!(ev.t1 >= ev.t0, "span ends before it starts: {ev:?}");
        self.total_spans += 1;
        if ev.kind == SpanKind::UnexpectedCopy {
            self.unexpected += 1;
        }
        self.push_span(ev);
    }

    #[inline]
    fn link_delta(&mut self, link: u32, t: SimTime, delta: i8) {
        self.link_deltas.push((t, link, delta));
    }

    #[inline]
    fn gauge(&mut self, id: GaugeId, value: u64) {
        let g = &mut self.gauges[id as usize];
        *g = (*g).max(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: u32, kind: SpanKind, t0: u64, t1: u64) -> SpanEvent {
        SpanEvent::new(rank, kind, SimTime::from_us(t0), SimTime::from_us(t1))
    }

    #[test]
    fn ring_overwrites_oldest_past_capacity() {
        let mut r = RingRecorder::with_capacity(3);
        for i in 0..5u64 {
            r.span(span(0, SpanKind::Compute, i, i + 1));
        }
        assert_eq!(r.total_spans(), 5);
        assert_eq!(r.dropped(), 2);
        let starts: Vec<u64> = r.spans().iter().map(|e| e.t0.as_us() as u64).collect();
        // slots hold {3, 4, 2} after overwriting 0 and 1
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 3, 4]);
    }

    #[test]
    fn breakdown_buckets_by_kind() {
        let mut r = RingRecorder::new();
        r.span(span(0, SpanKind::Compute, 0, 10));
        r.span(span(0, SpanKind::SendOverhead, 10, 12));
        r.span(span(0, SpanKind::Wait, 12, 20));
        r.span(span(1, SpanKind::CollectiveWait, 0, 5));
        r.span(
            span(0, SpanKind::MsgWire, 12, 20).with_msg(1, 0, 64).with_aux(SimTime::from_us(6)),
        );
        r.span(span(0, SpanKind::Rendezvous, 10, 12));
        r.span(span(1, SpanKind::UnexpectedCopy, 5, 6));
        let b = r.breakdown();
        assert_eq!(b.compute, SimTime::from_us(10));
        assert_eq!(b.overhead, SimTime::from_us(2));
        assert_eq!(b.wait, SimTime::from_us(8));
        assert_eq!(b.collective, SimTime::from_us(5));
        assert_eq!(b.wire, SimTime::from_us(6));
        assert_eq!(b.contention, SimTime::from_us(2));
        assert_eq!(b.handshake, SimTime::from_us(2));
        assert_eq!(b.copy, SimTime::from_us(1));
        assert_eq!(b.cpu_total(), SimTime::from_us(25));
        assert_eq!(r.unexpected(), 1);
    }

    #[test]
    fn cpu_sums_ignore_net_spans() {
        let mut r = RingRecorder::new();
        r.span(span(0, SpanKind::Compute, 0, 4));
        r.span(span(0, SpanKind::Wait, 4, 9));
        r.span(span(0, SpanKind::MsgWire, 0, 100));
        r.span(span(2, SpanKind::Delay, 0, 7));
        let sums = r.cpu_sums();
        assert_eq!(sums.len(), 3);
        assert_eq!(sums[0], SimTime::from_us(9));
        assert_eq!(sums[1], SimTime::ZERO);
        assert_eq!(sums[2], SimTime::from_us(7));
    }

    #[test]
    fn link_usage_integrates_and_peaks() {
        let mut r = RingRecorder::new();
        // link 5: two overlapping flows over [0,4] and [2,6]
        r.link_delta(5, SimTime::from_us(0), 1);
        r.link_delta(5, SimTime::from_us(2), 1);
        r.link_delta(5, SimTime::from_us(4), -1);
        r.link_delta(5, SimTime::from_us(6), -1);
        // link 2: release and acquire at the same instant must not peak at 2
        r.link_delta(2, SimTime::from_us(0), 1);
        r.link_delta(2, SimTime::from_us(3), -1);
        r.link_delta(2, SimTime::from_us(3), 1);
        r.link_delta(2, SimTime::from_us(5), -1);
        let usage = r.link_usage(SimTime::from_us(10));
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].link, 2);
        assert_eq!(usage[0].peak, 1);
        assert!((usage[0].mean - 0.5).abs() < 1e-12);
        assert_eq!(usage[1].link, 5);
        assert_eq!(usage[1].peak, 2);
        // ∫ load = 2 + 2·2 + 2 = 8 flow·µs over 10 µs
        assert!((usage[1].mean - 0.8).abs() < 1e-12);
    }

    #[test]
    fn link_usage_out_of_order_input_is_fine() {
        let mut a = RingRecorder::new();
        a.link_delta(1, SimTime::from_us(7), -1);
        a.link_delta(1, SimTime::from_us(1), 1);
        let u = a.link_usage(SimTime::from_us(10));
        assert_eq!(u[0].peak, 1);
        assert!((u[0].mean - 0.6).abs() < 1e-12);
    }

    #[test]
    fn merge_is_deterministic_and_sums() {
        let mut a = RingRecorder::new();
        a.span(span(0, SpanKind::Compute, 0, 1));
        a.gauge(GaugeId::EventQueueDepth, 4);
        let mut b = RingRecorder::new();
        b.span(span(1, SpanKind::Wait, 0, 2));
        b.span(span(1, SpanKind::UnexpectedCopy, 0, 1));
        b.gauge(GaugeId::EventQueueDepth, 9);
        b.link_delta(0, SimTime::ZERO, 1);
        let mut m1 = RingRecorder::new();
        m1.merge(&a);
        m1.merge(&b);
        let mut m2 = RingRecorder::new();
        m2.merge(&a);
        m2.merge(&b);
        assert_eq!(m1.spans(), m2.spans());
        assert_eq!(m1.total_spans(), 3);
        assert_eq!(m1.unexpected(), 1);
        assert_eq!(m1.gauge_value(GaugeId::EventQueueDepth), 9);
        assert_eq!(m1.link_deltas().len(), 1);
    }

    #[test]
    fn retransmit_spans_bucket_separately() {
        let mut r = RingRecorder::new();
        r.span(span(0, SpanKind::Retransmit, 0, 3));
        let b = r.breakdown();
        assert_eq!(b.retransmit, SimTime::from_us(3));
        assert_eq!(b.cpu_total(), SimTime::ZERO, "retransmit is net-track time");
        // the pristine report table keeps its eight columns
        assert_eq!(b.fields().len(), 8);
        assert!(b.fields().iter().all(|(name, _)| *name != "retransmit"));
    }

    #[test]
    fn gauges_keep_running_max() {
        let mut r = RingRecorder::new();
        r.gauge(GaugeId::PostedMatchDepth, 3);
        r.gauge(GaugeId::PostedMatchDepth, 1);
        assert_eq!(r.gauge_value(GaugeId::PostedMatchDepth), 3);
        assert_eq!(r.gauge_value(GaugeId::ArrivedMatchDepth), 0);
    }
}
