//! Chrome `trace_event` export and validation.
//!
//! The exporter writes the JSON object format (`{"traceEvents": [...]}`)
//! that `chrome://tracing` and Perfetto load directly. Each scenario
//! becomes one *process* (pid = scenario index); each rank owns two
//! *threads*: tid `2r` is the cpu track (B/E duration pairs that tile
//! the rank clock) and tid `2r+1` is the net track (X complete events
//! for in-flight message state, which may overlap).
//!
//! Timestamps are microseconds of *simulated* time. Everything is
//! emitted in a deterministic sort order, so traces are byte-identical
//! across runs and worker counts.
//!
//! [`validate_trace`] re-parses the JSON with a dependency-free
//! recursive-descent parser and checks the structural invariants the
//! golden tests pin: well-formedness, non-decreasing `ts` per track,
//! and matched B/E pairs.

use crate::recorder::RingRecorder;
use crate::{SpanEvent, SpanKind, NO_PEER};
use hpcsim_engine::SimTime;
use std::collections::HashMap;
use std::fmt::Write as _;

fn ts_us(t: SimTime) -> String {
    format!("{:.6}", t.as_ps() as f64 / 1e6)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Deterministic per-track sort key: spans on one track never overlap
/// (cpu) or are disambiguated by message identity (net).
fn sort_key(ev: &SpanEvent) -> (u32, SimTime, SimTime, u32, u32) {
    (ev.rank, ev.t0, ev.t1, ev.tag, ev.peer)
}

fn msg_args(ev: &SpanEvent) -> String {
    let mut s = format!("{{\"peer\":{},\"tag\":{},\"bytes\":{}", ev.peer, ev.tag, ev.bytes);
    if ev.kind == SpanKind::MsgWire {
        let _ = write!(s, ",\"base_us\":{}", ts_us(ev.aux));
    }
    s.push('}');
    s
}

/// Render scenarios as Chrome `trace_event` JSON. `scenarios` pairs a
/// display label with its recorder; order fixes the pid assignment.
pub fn chrome_trace(scenarios: &[(String, &RingRecorder)]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for (pid, (label, rec)) in scenarios.iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
                escape(label)
            ),
        );
        let mut cpu: Vec<&SpanEvent> = rec.spans().iter().filter(|e| e.kind.is_cpu()).collect();
        let mut net: Vec<&SpanEvent> = rec.spans().iter().filter(|e| !e.kind.is_cpu()).collect();
        cpu.sort_unstable_by_key(|e| sort_key(e));
        net.sort_unstable_by_key(|e| sort_key(e));
        let mut ranks: Vec<u32> = rec.spans().iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for &r in &ranks {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"rank {r} cpu\"}}}}",
                    2 * r
                ),
            );
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"rank {r} net\"}}}}",
                    2 * r + 1
                ),
            );
        }
        for ev in cpu {
            let tid = 2 * ev.rank;
            let name = ev.kind.label();
            if ev.peer == NO_PEER {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{name}\"}}",
                        ts_us(ev.t0)
                    ),
                );
            } else {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\"args\":{}}}",
                        ts_us(ev.t0),
                        msg_args(ev)
                    ),
                );
            }
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{name}\"}}",
                    ts_us(ev.t1)
                ),
            );
        }
        for ev in net {
            let tid = 2 * ev.rank + 1;
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"args\":{}}}",
                    ts_us(ev.t0),
                    ts_us(ev.dur()),
                    ev.kind.label(),
                    msg_args(ev)
                ),
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render scenarios as a compact CSV (same deterministic order as the
/// Chrome export).
pub fn trace_csv(scenarios: &[(String, &RingRecorder)]) -> String {
    let mut out = String::from("scenario,rank,track,kind,peer,tag,bytes,t0_us,t1_us,base_us\n");
    for (label, rec) in scenarios {
        let mut spans: Vec<&SpanEvent> = rec.spans().iter().collect();
        spans.sort_unstable_by_key(|e| (u32::from(!e.kind.is_cpu()), sort_key(e)));
        for ev in spans {
            let track = if ev.kind.is_cpu() { "cpu" } else { "net" };
            let peer = if ev.peer == NO_PEER { String::new() } else { ev.peer.to_string() };
            let _ = writeln!(
                out,
                "{},{},{track},{},{peer},{},{},{},{},{}",
                escape(label),
                ev.rank,
                ev.kind.label(),
                ev.tag,
                ev.bytes,
                ts_us(ev.t0),
                ts_us(ev.t1),
                ts_us(ev.aux),
            );
        }
    }
    out
}

/// Summary of a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// All events, metadata included.
    pub events: usize,
    /// Duration spans: matched B/E pairs plus X complete events.
    pub spans: usize,
    /// Distinct `(pid, tid)` tracks carrying timed events.
    pub tracks: usize,
}

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (the workspace's serde
// is a no-op shim, so validation parses by hand).
// ---------------------------------------------------------------------

/// Maximum container nesting depth [`parse_json`] accepts. The traces
/// this crate emits nest three levels deep; the limit exists so
/// adversarial input exhausts the error path, not the call stack.
pub const MAX_JSON_DEPTH: usize = 64;

/// A parsed JSON value (the dependency-free validation parser's output).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Obj(Vec<(String, JsonValue)>),
    Arr(Vec<JsonValue>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl JsonValue {
    /// Field lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Rejects trailing bytes, nesting past
/// [`MAX_JSON_DEPTH`], and every malformation with `Err` — never a
/// panic (a fuzz suite in `tests/fuzz_chrome.rs` pins this).
pub fn parse_json(json: &str) -> Result<JsonValue, String> {
    let mut p = Parser::new(json);
    let root = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes after JSON value at byte {}", p.i));
    }
    Ok(root)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { b: s.as_bytes(), i: 0, depth: 0 }
    }

    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("JSON error at byte {}: {msg}", self.i))
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') | Some(b'[') => {
                self.depth += 1;
                if self.depth > MAX_JSON_DEPTH {
                    return self.err(&format!("nesting deeper than {MAX_JSON_DEPTH}"));
                }
                let v = if self.b[self.i] == b'{' { self.object() } else { self.array() };
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return self.err("unterminated string");
            };
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return self.err("bad escape");
                    };
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return self.err("bad \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.i += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // copy the raw UTF-8 byte run starting here
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && self.b[end] != b'"' && self.b[end] != b'\\' {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    s.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let txt = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad number")?;
        txt.parse::<f64>().map(JsonValue::Num).or_else(|_| self.err("bad number"))
    }
}

/// Parse `json` and check the trace-structure invariants:
///
/// * well-formed JSON with a top-level `traceEvents` array;
/// * every event has a known `ph` (`M`/`B`/`E`/`X`) and the fields that
///   phase requires;
/// * per `(pid, tid)` track, `ts` is non-decreasing in array order;
/// * `B`/`E` events nest and match by name, with no stack left open;
/// * `X` durations are non-negative.
pub fn validate_trace(json: &str) -> Result<TraceStats, String> {
    let root = parse_json(json)?;
    let Some(JsonValue::Arr(events)) = root.get("traceEvents") else {
        return Err("missing traceEvents array".into());
    };

    struct Track {
        last_ts: f64,
        stack: Vec<String>,
    }
    let mut tracks: HashMap<(i64, i64), Track> = HashMap::new();
    let mut spans = 0usize;
    for (idx, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {idx}: missing ph"))?;
        if ph == "M" {
            ev.get("name").and_then(JsonValue::as_str).ok_or(format!("event {idx}: M without name"))?;
            continue;
        }
        if !matches!(ph, "B" | "E" | "X") {
            return Err(format!("event {idx}: unsupported ph {ph:?}"));
        }
        let num = |key: &str| {
            ev.get(key).and_then(JsonValue::as_num).ok_or(format!("event {idx}: missing {key}"))
        };
        let pid = num("pid")? as i64;
        let tid = num("tid")? as i64;
        let ts = num("ts")?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {idx}: bad ts {ts}"));
        }
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {idx}: missing name"))?;
        let track = tracks
            .entry((pid, tid))
            .or_insert_with(|| Track { last_ts: 0.0, stack: Vec::new() });
        if ts < track.last_ts {
            return Err(format!(
                "event {idx}: ts {ts} goes backwards on track ({pid},{tid}) after {}",
                track.last_ts
            ));
        }
        track.last_ts = ts;
        match ph {
            "B" => track.stack.push(name.to_string()),
            "E" => {
                let open = track
                    .stack
                    .pop()
                    .ok_or_else(|| format!("event {idx}: E without open B on ({pid},{tid})"))?;
                if open != name {
                    return Err(format!("event {idx}: E {name:?} closes B {open:?}"));
                }
                spans += 1;
            }
            _ => {
                let dur = num("dur")?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {idx}: bad dur {dur}"));
                }
                spans += 1;
            }
        }
    }
    for ((pid, tid), t) in &tracks {
        if !t.stack.is_empty() {
            return Err(format!(
                "track ({pid},{tid}): {} unclosed B event(s), e.g. {:?}",
                t.stack.len(),
                t.stack.last().unwrap()
            ));
        }
    }
    Ok(TraceStats { events: events.len(), spans, tracks: tracks.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_recorder() -> RingRecorder {
        let mut r = RingRecorder::new();
        let us = SimTime::from_us;
        r.span(SpanEvent::new(0, SpanKind::Compute, us(0), us(10)));
        r.span(SpanEvent::new(0, SpanKind::SendOverhead, us(10), us(11)).with_msg(1, 5, 256));
        r.span(SpanEvent::new(0, SpanKind::Wait, us(11), us(20)));
        r.span(
            SpanEvent::new(0, SpanKind::MsgWire, us(11), us(19))
                .with_msg(1, 5, 256)
                .with_aux(us(6)),
        );
        r.span(SpanEvent::new(1, SpanKind::Delay, us(0), us(4)));
        r.span(SpanEvent::new(1, SpanKind::UnexpectedCopy, us(4), us(5)).with_msg(0, 5, 256));
        r
    }

    #[test]
    fn export_validates_and_counts() {
        let rec = sample_recorder();
        let json = chrome_trace(&[("unit".to_string(), &rec)]);
        let stats = validate_trace(&json).expect("valid trace");
        // 4 cpu B/E pairs + 2 net X events, 1 process + 4 thread metadata
        assert_eq!(stats.spans, 6);
        assert_eq!(stats.tracks, 4);
        assert_eq!(stats.events, 5 + 2 * 4 + 2);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("rank 1 net"));
        assert!(json.contains("\"base_us\":6.000000"));
    }

    #[test]
    fn export_is_deterministic() {
        let rec = sample_recorder();
        let scenarios = vec![("unit".to_string(), &rec)];
        assert_eq!(chrome_trace(&scenarios), chrome_trace(&scenarios));
        assert_eq!(trace_csv(&scenarios), trace_csv(&scenarios));
    }

    #[test]
    fn csv_has_all_spans() {
        let rec = sample_recorder();
        let csv = trace_csv(&[("unit".to_string(), &rec)]);
        assert_eq!(csv.lines().count(), 1 + rec.spans().len());
        assert!(csv.starts_with("scenario,rank,track,kind"));
        assert!(csv.contains("unit,0,net,msg_wire,1,5,256,"));
    }

    #[test]
    fn validator_rejects_backwards_ts() {
        let bad = r#"{"traceEvents":[
            {"ph":"B","pid":0,"tid":0,"ts":5.0,"name":"a"},
            {"ph":"E","pid":0,"tid":0,"ts":4.0,"name":"a"}
        ]}"#;
        let err = validate_trace(bad).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn validator_rejects_unmatched_spans() {
        let open = r#"{"traceEvents":[{"ph":"B","pid":0,"tid":0,"ts":1.0,"name":"a"}]}"#;
        assert!(validate_trace(open).unwrap_err().contains("unclosed"));
        let cross = r#"{"traceEvents":[
            {"ph":"B","pid":0,"tid":0,"ts":1.0,"name":"a"},
            {"ph":"E","pid":0,"tid":0,"ts":2.0,"name":"b"}
        ]}"#;
        assert!(validate_trace(cross).unwrap_err().contains("closes"));
        let bare = r#"{"traceEvents":[{"ph":"E","pid":0,"tid":0,"ts":1.0,"name":"a"}]}"#;
        assert!(validate_trace(bare).unwrap_err().contains("without open"));
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_trace("{\"traceEvents\":[").is_err());
        assert!(validate_trace("[]").is_err());
        assert!(validate_trace("{\"traceEvents\":[]} trailing").is_err());
        assert!(validate_trace("{\"traceEvents\":[{\"ph\":\"Q\",\"name\":\"x\"}]}").is_err());
    }

    #[test]
    fn validator_accepts_escapes_and_numbers() {
        let json = r#"{"traceEvents":[
            {"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"a\"b\\cé"}},
            {"ph":"X","pid":0,"tid":1,"ts":1.5e2,"dur":0.0,"name":"n"}
        ]}"#;
        let stats = validate_trace(json).expect("valid");
        assert_eq!(stats.events, 2);
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.tracks, 1);
    }
}
