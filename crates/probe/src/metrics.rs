//! Typed metrics registry and JSON report.
//!
//! A [`MetricsRegistry`] is a flat, ordered list of named metric values
//! for one traced scenario, built from the recorder plus the engine's
//! statistics accumulators (`OnlineStats`, `Histogram`). The report
//! writer emits deterministic, hand-rolled JSON (the workspace serde is
//! a marker-trait shim with no runtime serialization), so the output is
//! byte-identical across runs and worker counts.

use hpcsim_engine::stats::{Histogram, OnlineStats};
use std::fmt::Write as _;

/// Format an `f64` deterministically, mapping non-finite values (e.g.
/// the ±inf min/max of an empty `OnlineStats`) to `0`.
fn fnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.000000".to_string()
    }
}

/// One metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Instantaneous or derived scalar.
    Gauge(f64),
    /// Distribution summary from [`OnlineStats`].
    Stats {
        /// Observation count.
        count: u64,
        /// Arithmetic mean.
        mean: f64,
        /// Population standard deviation.
        stddev: f64,
        /// Smallest observation (0 when empty).
        min: f64,
        /// Largest observation (0 when empty).
        max: f64,
    },
    /// Quantile summary from a [`Histogram`].
    Quantiles {
        /// Observation count.
        count: u64,
        /// Median (bin lower edge).
        p50: f64,
        /// 90th percentile.
        p90: f64,
        /// 99th percentile.
        p99: f64,
    },
}

impl MetricValue {
    fn render(&self, out: &mut String) {
        match self {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge(v) => out.push_str(&fnum(*v)),
            MetricValue::Stats { count, mean, stddev, min, max } => {
                let _ = write!(
                    out,
                    "{{\"count\":{count},\"mean\":{},\"stddev\":{},\"min\":{},\"max\":{}}}",
                    fnum(*mean),
                    fnum(*stddev),
                    fnum(*min),
                    fnum(*max),
                );
            }
            MetricValue::Quantiles { count, p50, p90, p99 } => {
                let _ = write!(
                    out,
                    "{{\"count\":{count},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                    fnum(*p50),
                    fnum(*p90),
                    fnum(*p99),
                );
            }
        }
    }
}

/// Ordered metric set for one scenario. Insertion order is preserved in
/// the JSON output, so build it the same way every run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    label: String,
    entries: Vec<(String, MetricValue)>,
}

impl MetricsRegistry {
    /// A registry for the scenario named `label`.
    pub fn new(label: impl Into<String>) -> Self {
        MetricsRegistry { label: label.into(), entries: Vec::new() }
    }

    /// Scenario label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Add a counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.entries.push((name.into(), MetricValue::Counter(value)));
        self
    }

    /// Add a gauge.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.entries.push((name.into(), MetricValue::Gauge(value)));
        self
    }

    /// Add a distribution summary from an [`OnlineStats`] accumulator.
    pub fn stats(&mut self, name: impl Into<String>, s: &OnlineStats) -> &mut Self {
        let empty = s.count() == 0;
        self.entries.push((
            name.into(),
            MetricValue::Stats {
                count: s.count(),
                mean: s.mean(),
                stddev: s.stddev(),
                min: if empty { 0.0 } else { s.min() },
                max: if empty { 0.0 } else { s.max() },
            },
        ));
        self
    }

    /// Add a quantile summary from a [`Histogram`].
    pub fn quantiles(&mut self, name: impl Into<String>, h: &Histogram) -> &mut Self {
        let q = |p: f64| h.quantile(p).unwrap_or(0.0);
        self.entries.push((
            name.into(),
            MetricValue::Quantiles { count: h.count(), p50: q(0.5), p90: q(0.9), p99: q(0.99) },
        ));
        self
    }

    fn render(&self, out: &mut String) {
        let _ = write!(out, "{{\"label\":\"{}\",\"metrics\":{{", escape(&self.label));
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(name));
            value.render(out);
        }
        out.push_str("}}");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full metrics report: per experiment id, the scenario
/// registries in battery order. Deliberately timestamp-free so traced
/// runs stay byte-identical (timestamps live in `BENCH_repro.json`).
pub fn metrics_report_json(experiments: &[(String, Vec<MetricsRegistry>)]) -> String {
    let mut out = String::from("{\"schema\":\"hpcsim-probe-metrics/1\",\"experiments\":[");
    for (i, (id, scenarios)) in experiments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"id\":\"{}\",\"scenarios\":[", escape(id));
        for (j, reg) in scenarios.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            reg.render(&mut out);
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::validate_trace;

    #[test]
    fn registry_preserves_order_and_types() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        let mut h = Histogram::latency();
        h.record(1e-6);
        h.record(2e-6);
        let mut reg = MetricsRegistry::new("halo");
        reg.counter("messages", 42).gauge("makespan_us", 12.5).stats("link_load", &s);
        reg.quantiles("wire_latency_s", &h);
        let names: Vec<&str> = reg.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["messages", "makespan_us", "link_load", "wire_latency_s"]);
        match &reg.entries()[2].1 {
            MetricValue::Stats { count, mean, .. } => {
                assert_eq!(*count, 2);
                assert!((mean - 2.0).abs() < 1e-12);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn empty_stats_serialize_finite() {
        let mut reg = MetricsRegistry::new("empty");
        reg.stats("nothing", &OnlineStats::new());
        reg.quantiles("nohist", &Histogram::latency());
        let json = metrics_report_json(&[("fig2".to_string(), vec![reg])]);
        assert!(!json.contains("inf"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
        assert!(json.contains("\"count\":0"));
    }

    #[test]
    fn report_is_wellformed_json() {
        let mut reg = MetricsRegistry::new("scen \"a\"");
        reg.counter("n", 1);
        let json = metrics_report_json(&[("fig2".to_string(), vec![reg])]);
        // reuse the trace validator's JSON parser by wrapping the report
        let wrapped = format!("{{\"traceEvents\":[],\"report\":{json}}}");
        assert!(validate_trace(&wrapped).is_ok(), "{json}");
    }

    #[test]
    fn report_is_deterministic() {
        let mut reg = MetricsRegistry::new("s");
        reg.counter("a", 1).gauge("b", 2.0);
        let exps = vec![("fig8".to_string(), vec![reg])];
        assert_eq!(metrics_report_json(&exps), metrics_report_json(&exps));
    }
}
