//! Fuzz-style robustness tests for the hand-rolled JSON parser behind
//! `validate_trace`: whatever bytes arrive, the parser returns `Err` —
//! it never panics, never overflows the stack, and round-trips every
//! value it can itself represent.

use hpcsim_engine::rng::DetRng;
use hpcsim_engine::SimTime;
use hpcsim_probe::{
    chrome_trace, parse_json, JsonValue, RingRecorder, SpanEvent, SpanKind, Tracer,
    MAX_JSON_DEPTH,
};
use proptest::prelude::*;

fn sample_trace_json() -> String {
    let mut r = RingRecorder::new();
    let us = SimTime::from_us;
    r.span(SpanEvent::new(0, SpanKind::Compute, us(0), us(10)));
    r.span(SpanEvent::new(0, SpanKind::SendOverhead, us(10), us(11)).with_msg(1, 5, 256));
    r.span(SpanEvent::new(0, SpanKind::Wait, us(11), us(20)));
    r.span(SpanEvent::new(0, SpanKind::MsgWire, us(11), us(19)).with_msg(1, 5, 256).with_aux(us(6)));
    chrome_trace(&[("fuzz".to_string(), &r)])
}

#[test]
fn truncated_input_errs_never_panics() {
    let json = sample_trace_json();
    assert!(json.is_ascii(), "sample must be ASCII so every cut is a char boundary");
    let mut errors = 0usize;
    for cut in 0..json.len() {
        if parse_json(&json[..cut]).is_err() {
            errors += 1;
        }
    }
    // every cut except those that only drop trailing whitespace must fail
    let trailing_ws = json.len() - json.trim_end().len();
    assert!(errors >= json.len() - trailing_ws, "{errors} errors over {} cuts", json.len());
}

#[test]
fn deep_nesting_errs_instead_of_overflowing_the_stack() {
    for open in ["[", "{\"k\":"] {
        let bomb = open.repeat(100_000);
        let err = parse_json(&bomb).expect_err("nesting bomb must be rejected");
        assert!(err.contains("nesting"), "unexpected error: {err}");
    }
}

#[test]
fn nesting_limit_is_exact() {
    let ok = format!("{}1{}", "[".repeat(MAX_JSON_DEPTH), "]".repeat(MAX_JSON_DEPTH));
    assert!(parse_json(&ok).is_ok(), "depth {MAX_JSON_DEPTH} must parse");
    let too_deep =
        format!("{}1{}", "[".repeat(MAX_JSON_DEPTH + 1), "]".repeat(MAX_JSON_DEPTH + 1));
    assert!(parse_json(&too_deep).is_err(), "depth {} must be rejected", MAX_JSON_DEPTH + 1);
}

#[test]
fn invalid_escapes_err() {
    for bad in [
        r#""\u12""#,      // truncated \u
        r#""\u""#,        // empty \u
        r#""\uZZZZ""#,    // non-hex \u
        r#""\q""#,        // unknown escape
        r#""\"#,          // escape at EOF
        r#""abc"#,        // unterminated string
        "\"\\u00g0\"",    // non-hex digit mid-escape
    ] {
        assert!(parse_json(bad).is_err(), "input {bad:?} must be rejected");
    }
    // a lone surrogate is *representable garbage*: it decodes to U+FFFD
    // rather than panicking inside char::from_u32
    assert_eq!(parse_json(r#""\ud800""#), Ok(JsonValue::Str("\u{fffd}".to_string())));
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = DetRng::new(0xFA57, 0);
    for _ in 0..2000 {
        let len = rng.next_below(200) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_json(&text); // any Result is fine; a panic is not
    }
}

#[test]
fn mutated_valid_traces_never_panic() {
    let json = sample_trace_json();
    let mut rng = DetRng::new(0xBEEF, 1);
    for _ in 0..500 {
        let mut bytes = json.clone().into_bytes();
        for _ in 0..1 + rng.next_below(4) {
            let at = rng.next_below(bytes.len() as u64) as usize;
            bytes[at] = rng.next_below(128) as u8; // keep it ASCII/UTF-8-valid
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = parse_json(&text);
        }
    }
}

// -------------------------------------------------------------------
// parse(serialize(x)) round-trip over randomly generated values
// -------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn serialize(v: &JsonValue, out: &mut String) {
    use std::fmt::Write as _;
    match v {
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(k, out);
                out.push_str("\":");
                serialize(v, out);
            }
            out.push('}');
        }
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                serialize(v, out);
            }
            out.push(']');
        }
        JsonValue::Str(s) => {
            out.push('"');
            escape_into(s, out);
            out.push('"');
        }
        JsonValue::Num(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Null => out.push_str("null"),
    }
}

fn gen_string(rng: &mut DetRng) -> String {
    const ALPHABET: &[char] =
        &['a', 'Z', '0', ' ', '"', '\\', '\n', '\t', 'é', '💡', '\u{1}', ':', ',', '{', ']'];
    let len = rng.next_below(12) as usize;
    (0..len).map(|_| ALPHABET[rng.next_below(ALPHABET.len() as u64) as usize]).collect()
}

fn gen_value(rng: &mut DetRng, depth: usize) -> JsonValue {
    let pick = if depth >= 5 { 2 + rng.next_below(4) } else { rng.next_below(6) };
    match pick {
        0 => {
            let n = rng.next_below(4) as usize;
            JsonValue::Obj((0..n).map(|_| (gen_string(rng), gen_value(rng, depth + 1))).collect())
        }
        1 => {
            let n = rng.next_below(4) as usize;
            JsonValue::Arr((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        2 => JsonValue::Str(gen_string(rng)),
        3 => {
            // mix of integers, fractions, negatives, and large magnitudes
            let raw = rng.next_u64();
            let n = match raw % 4 {
                0 => (raw >> 32) as f64,
                1 => -((raw >> 40) as f64),
                2 => (raw >> 16) as f64 / 1024.0,
                _ => (raw >> 50) as f64 * 1e12,
            };
            JsonValue::Num(n)
        }
        4 => JsonValue::Bool(raw_bool(rng)),
        _ => JsonValue::Null,
    }
}

fn raw_bool(rng: &mut DetRng) -> bool {
    rng.next_below(2) == 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serializing any representable value and re-parsing it yields the
    /// same value (f64 `Display` round-trips exactly in Rust).
    #[test]
    fn parse_serialize_round_trips(seed: u64) {
        let mut rng = DetRng::new(seed, 0);
        let v = gen_value(&mut rng, 0);
        let mut text = String::new();
        serialize(&v, &mut text);
        let back = parse_json(&text);
        prop_assert_eq!(back, Ok(v), "serialized form: {}", text);
    }
}
