//! Deterministic, splittable random streams.
//!
//! Every experiment in the study runs from a single `u64` seed. Components
//! (per-rank benchmark drivers, placement jitter, noise models, …) derive
//! *independent* sub-streams with [`split_seed`], a SplitMix64-based mixer.
//! This keeps results reproducible regardless of the order in which
//! components are constructed or polled — a property the whole experiment
//! pipeline relies on.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step: mixes a 64-bit state into a well-distributed output.
/// This is the standard finalizer from Steele et al., used here to derive
/// independent stream seeds from `(root, index)` pairs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of sub-stream `index` from a root seed.
///
/// Distinct `(seed, index)` pairs give (with overwhelming probability)
/// distinct, decorrelated sub-seeds.
#[inline]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    // Two rounds with the index folded in between rounds; a single xor
    // before one round would leave low-index streams weakly correlated.
    splitmix64(splitmix64(seed) ^ splitmix64(index.wrapping_add(0xA5A5_A5A5_A5A5_A5A5)))
}

/// A deterministic RNG handle for one simulation component.
///
/// Thin wrapper over [`StdRng`] seeded via [`split_seed`], so call sites
/// say *which* stream they want rather than passing RNGs around.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Stream `index` of root `seed`.
    pub fn new(seed: u64, index: u64) -> Self {
        DetRng { inner: StdRng::seed_from_u64(split_seed(seed, index)) }
    }

    /// Access the underlying `rand` RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        use rand::Rng;
        self.inner.gen::<f64>()
    }

    /// Uniform `u64` over the full range.
    pub fn next_u64(&mut self) -> u64 {
        use rand::Rng;
        self.inner.gen::<u64>()
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        use rand::Rng;
        self.inner.gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
    }

    #[test]
    fn split_seed_separates_streams() {
        let s: Vec<u64> = (0..64).map(|i| split_seed(1, i)).collect();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "stream seeds must be distinct");
    }

    #[test]
    fn split_seed_separates_roots() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        // index 0 must not be a fixed point that ignores the seed
        assert_ne!(split_seed(0, 0), 0);
    }

    #[test]
    fn det_rng_reproduces() {
        let mut a = DetRng::new(9, 3);
        let mut b = DetRng::new(9, 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn det_rng_streams_differ() {
        let mut a = DetRng::new(9, 3);
        let mut b = DetRng::new(9, 4);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent streams should (almost) never collide");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = DetRng::new(5, 0);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = DetRng::new(5, 1);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
