//! Integer virtual time.
//!
//! Virtual time is represented in **picoseconds** as a `u64`. The range is
//! about 213 days of simulated time, far beyond any run in the study (the
//! longest simulated interval is a few thousand seconds of POP execution).
//! Integer time makes event ordering exact and platform-independent, which
//! keeps every experiment in the reproduction bit-reproducible.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Picoseconds per second.
const PS_PER_SEC: f64 = 1e12;

/// A point in (or duration of) virtual time, in picoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic provided covers both uses. Construction from floating-point
/// seconds rounds to the nearest picosecond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero (also the zero duration).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// One picosecond.
    pub const PICO: SimTime = SimTime(1);
    /// One nanosecond.
    pub const NANO: SimTime = SimTime(1_000);
    /// One microsecond.
    pub const MICRO: SimTime = SimTime(1_000_000);
    /// One millisecond.
    pub const MILLI: SimTime = SimTime(1_000_000_000);
    /// One second.
    pub const SEC: SimTime = SimTime(1_000_000_000_000);

    /// Construct from whole picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest picosecond.
    /// Negative and NaN inputs saturate to zero; +inf saturates to `MAX`.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must land here too
        if !(secs > 0.0) {
            return SimTime::ZERO;
        }
        let ps = secs * PS_PER_SEC;
        if ps >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ps.round() as u64)
        }
    }

    /// Construct from fractional microseconds.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// The raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Convert to fractional seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_SEC
    }

    /// Convert to fractional microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Convert to fractional milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition — `MAX` acts as an absorbing "never" value.
    #[inline]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction, clamping at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Scale a duration by a dimensionless factor (e.g. contention slowdown),
    /// rounding to the nearest picosecond and saturating at `MAX`.
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime::from_secs(self.as_secs() * factor)
    }

    /// True if this is the `MAX` sentinel.
    #[inline]
    pub const fn is_never(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    /// Human-scaled rendering: picks ps/ns/µs/ms/s by magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == u64::MAX {
            write!(f, "never")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.6}s", ps as f64 / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(SimTime::NANO, SimTime::PICO * 1_000);
        assert_eq!(SimTime::MICRO, SimTime::NANO * 1_000);
        assert_eq!(SimTime::MILLI, SimTime::MICRO * 1_000);
        assert_eq!(SimTime::SEC, SimTime::MILLI * 1_000);
    }

    #[test]
    fn from_secs_round_trips() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_ps(), 1_500_000_000_000);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_handles_pathological_inputs() {
        assert_eq!(SimTime::from_secs(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimTime::from_secs(0.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(3);
        assert_eq!((a + b).as_ps(), 13_000);
        assert_eq!((a - b).as_ps(), 7_000);
        assert_eq!((a * 4).as_ps(), 40_000);
        assert_eq!((a / 2).as_ps(), 5_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn checked_sub_panics_on_underflow() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn scale_rounds_and_saturates() {
        let t = SimTime::from_ns(100);
        assert_eq!(t.scale(2.5).as_ps(), 250_000);
        assert_eq!(t.scale(0.0), SimTime::ZERO);
        assert_eq!(SimTime::SEC.scale(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_ps(7).to_string(), "7ps");
        assert_eq!(SimTime::from_ns(1).to_string(), "1.000ns");
        assert_eq!(SimTime::from_us(42).to_string(), "42.000us");
        assert_eq!(SimTime::SEC.to_string(), "1.000000s");
        assert_eq!(SimTime::MAX.to_string(), "never");
    }

    #[test]
    fn one_bgp_cycle_is_representable() {
        // 850 MHz -> 1176.47 ps; rounding must preserve ~0.05% accuracy.
        let cycle = SimTime::from_secs(1.0 / 850e6);
        assert_eq!(cycle.as_ps(), 1176);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4u64).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }
}
