//! Unit helpers shared across the workspace.
//!
//! The paper mixes decimal (GB/s link bandwidth, GFlop/s) and binary
//! (GiB memory, KiB caches) units, as HPC papers do. Keeping the
//! conversions in one place avoids the classic 7%-at-GB-scale bugs.

/// Bytes in one decimal kilobyte.
pub const KB: u64 = 1_000;
/// Bytes in one decimal megabyte.
pub const MB: u64 = 1_000_000;
/// Bytes in one decimal gigabyte.
pub const GB: u64 = 1_000_000_000;

/// Bytes in one kibibyte.
pub const KIB: u64 = 1 << 10;
/// Bytes in one mebibyte.
pub const MIB: u64 = 1 << 20;
/// Bytes in one gibibyte.
pub const GIB: u64 = 1 << 30;

/// Floating-point operations per second in one GFlop/s.
pub const GFLOPS: f64 = 1e9;
/// Floating-point operations per second in one TFlop/s.
pub const TFLOPS: f64 = 1e12;

/// Render a byte count with a binary-unit suffix (e.g. `32KiB`, `2GiB`).
pub fn fmt_bytes_bin(bytes: u64) -> String {
    if bytes >= GIB && bytes.is_multiple_of(GIB) {
        format!("{}GiB", bytes / GIB)
    } else if bytes >= MIB && bytes.is_multiple_of(MIB) {
        format!("{}MiB", bytes / MIB)
    } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
        format!("{}KiB", bytes / KIB)
    } else {
        format!("{bytes}B")
    }
}

/// Render a rate in bytes/second with a decimal suffix (e.g. `5.10GB/s`).
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e9 {
        format!("{:.2}GB/s", bytes_per_sec / 1e9)
    } else if bytes_per_sec >= 1e6 {
        format!("{:.2}MB/s", bytes_per_sec / 1e6)
    } else if bytes_per_sec >= 1e3 {
        format!("{:.2}KB/s", bytes_per_sec / 1e3)
    } else {
        format!("{bytes_per_sec:.2}B/s")
    }
}

/// Render a flop rate (e.g. `13.60 GF/s`, `1.00 TF/s`).
pub fn fmt_flops(flops_per_sec: f64) -> String {
    if flops_per_sec >= TFLOPS {
        format!("{:.2} TF/s", flops_per_sec / TFLOPS)
    } else if flops_per_sec >= GFLOPS {
        format!("{:.2} GF/s", flops_per_sec / GFLOPS)
    } else {
        format!("{:.2} MF/s", flops_per_sec / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_and_decimal_units_differ() {
        assert_eq!(KIB, 1024);
        assert_eq!(KB, 1000);
        assert_eq!(GIB - GB, 73_741_824);
    }

    #[test]
    fn fmt_bytes_picks_exact_unit() {
        assert_eq!(fmt_bytes_bin(32 * KIB), "32KiB");
        assert_eq!(fmt_bytes_bin(8 * MIB), "8MiB");
        assert_eq!(fmt_bytes_bin(2 * GIB), "2GiB");
        assert_eq!(fmt_bytes_bin(1000), "1000B");
    }

    #[test]
    fn fmt_rate_scales() {
        assert_eq!(fmt_rate(5.1e9), "5.10GB/s");
        assert_eq!(fmt_rate(850e6), "850.00MB/s");
        assert_eq!(fmt_rate(1.5e3), "1.50KB/s");
        assert_eq!(fmt_rate(10.0), "10.00B/s");
    }

    #[test]
    fn fmt_flops_scales() {
        assert_eq!(fmt_flops(13.6e9), "13.60 GF/s");
        assert_eq!(fmt_flops(1e12), "1.00 TF/s");
        assert_eq!(fmt_flops(3.4e8), "340.00 MF/s");
    }
}
