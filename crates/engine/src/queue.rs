//! Deterministic event queue.
//!
//! A thin wrapper over `BinaryHeap` that orders events by `(time, seq)`:
//! earliest time first, and for equal times, insertion order (FIFO). The
//! sequence-number tie-break is what makes whole-system simulations
//! reproducible — without it, `BinaryHeap`'s arbitrary ordering of equal
//! keys would leak into message-matching order and change results between
//! runs.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `T` scheduled at a virtual time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<T> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Monotone insertion index; breaks ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// # Example
/// ```
/// use hpcsim_engine::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), "b");
/// q.push(SimTime::from_ns(1), "a");
/// q.push(SimTime::from_ns(5), "c");
/// assert_eq!(q.pop().unwrap().payload, "a");
/// assert_eq!(q.pop().unwrap().payload, "b"); // FIFO among equal times
/// assert_eq!(q.pop().unwrap().payload, "c");
/// ```
/// Internal heap entry: the packed `(time, seq)` key with payload along
/// for the ride. Ordering ignores the payload and reverses the key so
/// `BinaryHeap`'s max-heap pops earliest-first with one u128 compare.
#[derive(Debug, Clone)]
struct Keyed<T> {
    key: u128,
    payload: T,
}

impl<T> PartialEq for Keyed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Keyed<T> {}
impl<T> PartialOrd for Keyed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Keyed<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Max-heap of key-reversed entries: the packed key `time << 64 | seq`
    /// gives the exact earliest-`(time, seq)`-first order with a single
    /// u128 compare in the sift loops (`pop` is the hottest operation of
    /// the replay engine).
    heap: BinaryHeap<Keyed<T>>,
    next_seq: u64,
    /// Largest pending-event count ever reached. A branch-predictable
    /// compare per push; exposed so observability can report how deep
    /// the replay queue ran without sampling.
    high_water: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, high_water: 0 }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), next_seq: 0, high_water: 0 }
    }

    /// Schedule `payload` at `time`. Events pushed with equal times pop in
    /// push order.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let key = ((time.0 as u128) << 64) | self.next_seq as u128;
        self.next_seq += 1;
        self.heap.push(Keyed { key, payload });
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
    }

    /// Remove and return the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        self.heap.pop().map(|Keyed { key, payload }| ScheduledEvent {
            time: SimTime((key >> 64) as u64),
            seq: key as u64,
            payload,
        })
    }

    /// Peek at the earliest event's timestamp without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| SimTime((e.key >> 64) as u64))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events seen since
    /// construction (`clear` does not reset it).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drop all pending events, keeping allocated storage.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &(t, v) in &[(30u64, 3), (10, 1), (20, 2), (40, 4)] {
            q.push(SimTime::from_ns(t), v);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for v in 0..100 {
            q.push(SimTime::from_ns(7), v);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(9), 'x');
        q.push(SimTime::from_ns(2), 'y');
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
        assert_eq!(q.pop().unwrap().payload, 'y');
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::SEC, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.payload), None);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.push(SimTime::from_ns(1), 1);
        q.push(SimTime::from_ns(2), 2);
        q.push(SimTime::from_ns(3), 3);
        assert_eq!(q.high_water(), 3);
        q.pop();
        q.pop();
        q.push(SimTime::from_ns(4), 4);
        assert_eq!(q.high_water(), 3, "peak is sticky across pops");
        q.clear();
        assert_eq!(q.high_water(), 3, "clear keeps the mark");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5), 5);
        q.push(SimTime::from_ns(1), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.push(SimTime::from_ns(3), 3);
        q.push(SimTime::from_ns(2), 2);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(rest, vec![2, 3, 5]);
    }
}
