//! Online statistics, histograms and time-weighted integrals.
//!
//! All accumulators here are single-pass and allocation-free after
//! construction, so they can sit inside simulation hot loops. The power
//! model uses [`TimeWeighted`] to integrate watts over virtual time; the
//! benchmark harness uses [`OnlineStats`] (Welford) for run summaries and
//! [`Histogram`] for latency distributions.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bin logarithmic histogram over `(0, +inf)`.
///
/// Bin `i` covers `[base^i, base^(i+1)) * scale`. Used for message-latency
/// distributions where values span six orders of magnitude.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower bound of bin 0.
    scale: f64,
    /// Geometric bin width.
    base: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram with `nbins` geometric bins starting at `scale`, each
    /// `base` times wider than the last. Panics if `base <= 1` or
    /// `scale <= 0`.
    pub fn new(scale: f64, base: f64, nbins: usize) -> Self {
        assert!(scale > 0.0 && base > 1.0 && nbins > 0);
        Histogram { scale, base, bins: vec![0; nbins], underflow: 0, overflow: 0 }
    }

    /// Standard latency histogram: 1 ns to ~18 min in 64 half-decade bins.
    pub fn latency() -> Self {
        Histogram::new(1e-9, 10f64.powf(0.5), 64)
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN counts as underflow
        if !(x >= self.scale) {
            self.underflow += 1;
            return;
        }
        let idx = (x / self.scale).log(self.base).floor() as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Approximate quantile (`q` in `[0,1]`) using bin lower edges.
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target && target > 0 {
            return Some(0.0);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.scale * self.base.powi(i as i32));
            }
        }
        Some(f64::INFINITY)
    }

    /// Raw bin counts (for report rendering).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

/// Time-weighted integral of a piecewise-constant signal, e.g. power draw.
///
/// `set(t, v)` declares that the signal takes value `v` from time `t`
/// onward; `integral_to(t)` is `∫ signal dt` up to `t` in (value × seconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    /// Max instantaneous value seen.
    peak: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Empty integral starting at time zero with value zero.
    pub fn new() -> Self {
        TimeWeighted { last_time: SimTime::ZERO, last_value: 0.0, integral: 0.0, peak: 0.0, started: false }
    }

    /// Declare the signal value from `t` onward. `t` must be non-decreasing
    /// across calls; out-of-order updates panic (they indicate a simulator
    /// bug, not a data problem).
    pub fn set(&mut self, t: SimTime, value: f64) {
        assert!(
            !self.started || t >= self.last_time,
            "TimeWeighted updates must be time-ordered: {} < {}",
            t,
            self.last_time
        );
        if self.started {
            self.integral += self.last_value * (t - self.last_time).as_secs();
        }
        self.last_time = t;
        self.last_value = value;
        self.peak = self.peak.max(value);
        self.started = true;
    }

    /// Integral of the signal from the first `set` to `t`
    /// (value × seconds). `t` must be at or after the last update.
    pub fn integral_to(&self, t: SimTime) -> f64 {
        assert!(t >= self.last_time, "integral queried before last update");
        self.integral + self.last_value * (t - self.last_time).as_secs()
    }

    /// Time-average of the signal over `[first set, t]`; zero-length
    /// intervals return the current value.
    pub fn mean_to(&self, t: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let dur = t.as_secs();
        if dur <= 0.0 {
            return self.last_value;
        }
        self.integral_to(t) / dur
    }

    /// Largest instantaneous value declared so far.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Current (most recently declared) value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(1.0, 2.0, 10);
        for x in [1.0, 1.5, 2.0, 3.0, 4.0, 8.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        // bins: [1,2): 2 entries; [2,4): 2; [4,8): 1; [8,16): 1; [64,128): 1
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[1], 2);
        let median = h.quantile(0.5).unwrap();
        assert!((1.0..=4.0).contains(&median), "median bin edge {median}");
    }

    #[test]
    fn histogram_under_over_flow() {
        let mut h = Histogram::new(1.0, 2.0, 2); // covers [1,4)
        h.record(0.5);
        h.record(1e9);
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn time_weighted_integrates_rectangles() {
        let mut p = TimeWeighted::new();
        p.set(SimTime::ZERO, 100.0);
        p.set(SimTime::SEC * 2, 50.0);
        // 2 s at 100 + 3 s at 50 = 350 (value-seconds)
        let j = p.integral_to(SimTime::SEC * 5);
        assert!((j - 350.0).abs() < 1e-9);
        assert!((p.mean_to(SimTime::SEC * 5) - 70.0).abs() < 1e-9);
        assert_eq!(p.peak(), 100.0);
        assert_eq!(p.current(), 50.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn time_weighted_rejects_out_of_order() {
        let mut p = TimeWeighted::new();
        p.set(SimTime::SEC, 1.0);
        p.set(SimTime::ZERO, 2.0);
    }
}
