//! # hpcsim-engine
//!
//! Discrete-event simulation core underpinning the BlueGene/P reproduction
//! study. This crate is deliberately free of any machine- or network-specific
//! knowledge; it provides the four ingredients every layer above builds on:
//!
//! * [`SimTime`] — integer virtual time with picosecond resolution, so that
//!   simulations are exactly reproducible (no floating-point drift in the
//!   event order) while still resolving sub-nanosecond core cycles
//!   (an 850 MHz PowerPC 450 cycle is ~1176 ps).
//! * [`EventQueue`] — a deterministic priority queue of timestamped events
//!   with FIFO tie-breaking for equal timestamps.
//! * [`rng`] — splittable deterministic random streams, so that independent
//!   simulation components draw from independent streams derived from a
//!   single experiment seed.
//! * [`stats`] — online statistics, histograms and time-weighted integrals
//!   (the power model integrates watts over virtual time with these).
//!
//! The crate follows the conventions of the session's HPC-parallel guides:
//! allocation-free hot paths (the queue reuses its heap storage), data-race
//! freedom by construction (no shared mutable state; parallelism lives in
//! higher layers), and property-tested invariants.

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use queue::{EventQueue, ScheduledEvent};
pub use rng::{split_seed, splitmix64, DetRng};
pub use stats::{Histogram, OnlineStats, TimeWeighted};
pub use time::SimTime;
