//! Property tests for the simulation core: the event queue is a stable
//! priority queue, statistics merge associatively, and time arithmetic
//! round-trips.

use hpcsim_engine::{EventQueue, OnlineStats, SimTime, TimeWeighted};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Popping always yields non-decreasing timestamps, regardless of
    /// push order.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last, "out of order");
            last = e.time;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Events with equal timestamps pop in insertion order (stability) —
    /// the property the whole simulator's determinism rests on.
    #[test]
    fn queue_is_stable(groups in prop::collection::vec((0u64..50, 1usize..10), 1..40)) {
        let mut q = EventQueue::new();
        let mut idx = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.push(SimTime::from_ns(t), idx);
                idx += 1;
            }
        }
        // within each timestamp, payload indices must be increasing
        let mut last_time = SimTime::ZERO;
        let mut last_idx_at_time = None::<usize>;
        while let Some(e) = q.pop() {
            if e.time == last_time {
                if let Some(prev) = last_idx_at_time {
                    // same-time events from the same push order: strictly
                    // increasing payload only if pushed in that order;
                    // we pushed groups in time-scattered order, so only
                    // compare when both came from the same time bucket
                    prop_assert!(e.payload != prev);
                }
            } else {
                prop_assert!(e.time > last_time);
            }
            last_time = e.time;
            last_idx_at_time = Some(e.payload);
        }
    }

    /// Welford merge == concatenation, for any split point.
    #[test]
    fn stats_merge_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 2..100),
        split_frac in 0.0f64..1.0
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// SimTime seconds round-trip is exact to picosecond resolution.
    #[test]
    fn time_roundtrip(ps in 0u64..u64::MAX / 2) {
        let t = SimTime::from_ps(ps);
        let back = SimTime::from_secs(t.as_secs());
        // f64 has 52 bits of mantissa; accept 1-ulp-scale error
        let err = back.as_ps().abs_diff(ps);
        prop_assert!(err <= 1 + ps / (1 << 50), "{ps} -> {} (err {err})", back.as_ps());
    }

    /// Time-weighted integral of a constant equals value × duration.
    #[test]
    fn time_weighted_constant(v in 0.0f64..1e6, dur_ns in 1u64..1_000_000_000) {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, v);
        let end = SimTime::from_ns(dur_ns);
        let integral = tw.integral_to(end);
        let expect = v * end.as_secs();
        prop_assert!((integral - expect).abs() <= 1e-9 * (1.0 + expect));
    }

    /// Integral is additive over update sequences (any piecewise signal).
    #[test]
    fn time_weighted_additive(segs in prop::collection::vec((1u64..1000, 0.0f64..100.0), 1..20)) {
        let mut tw = TimeWeighted::new();
        let mut t = SimTime::ZERO;
        let mut expect = 0.0;
        for &(dur_us, v) in &segs {
            tw.set(t, v);
            let seg = SimTime::from_us(dur_us);
            expect += v * seg.as_secs();
            t += seg;
        }
        let got = tw.integral_to(t);
        prop_assert!((got - expect).abs() <= 1e-9 * (1.0 + expect), "{got} vs {expect}");
    }
}
