//! Golden-file validation of the Chrome trace exporter on a small HALO
//! run: the JSON is well-formed, timestamps are monotone per track,
//! every `B` has its matching `E`, and the export is byte-stable.

use hpcsim_hpcc::{halo_run_probe, HaloConfig, HaloProtocol};
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::ExecMode;
use hpcsim_probe::{chrome_trace, trace_csv, validate_trace, RingRecorder, SpanKind};
use hpcsim_topo::{Grid2D, Mapping};

fn small_halo() -> RingRecorder {
    let cfg = HaloConfig {
        grid: Grid2D::new(4, 4),
        words: 2048,
        protocol: HaloProtocol::IrecvIsend,
        reps: 2,
    };
    let mut rec = RingRecorder::new();
    halo_run_probe(&bluegene_p(), ExecMode::Vn, Mapping::txyz(), &cfg, &mut rec);
    rec
}

#[test]
fn small_halo_trace_validates() {
    let rec = small_halo();
    let json = chrome_trace(&[("halo 4x4".to_string(), &rec)]);
    // the validator enforces: parseable JSON, a traceEvents array,
    // non-decreasing ts per (pid, tid) track, and matched B/E pairs
    let stats = validate_trace(&json).expect("well-formed Chrome trace");
    assert_eq!(stats.spans as u64, rec.total_spans());
    // one cpu and one net track per rank, 16 ranks
    assert_eq!(stats.tracks, 32);
    // Perfetto needs these top-level fields
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"M\""));
    assert!(json.contains("\"process_name\""));
    assert!(json.contains("\"thread_name\""));
}

#[test]
fn trace_export_is_byte_stable_across_runs() {
    let a = small_halo();
    let b = small_halo();
    let name = "halo 4x4".to_string();
    assert_eq!(
        chrome_trace(&[(name.clone(), &a)]),
        chrome_trace(&[(name.clone(), &b)]),
        "identical runs must export identical traces"
    );
    assert_eq!(trace_csv(&[(name.clone(), &a)]), trace_csv(&[(name, &b)]));
}

#[test]
fn span_csv_covers_every_retained_span() {
    let rec = small_halo();
    let csv = trace_csv(&[("halo 4x4".to_string(), &rec)]);
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("scenario,rank,track,kind,peer,tag,bytes,t0_us,t1_us,base_us")
    );
    assert_eq!(lines.count() as u64, rec.total_spans());
    for kind in [SpanKind::MsgWire, SpanKind::SendOverhead, SpanKind::Wait] {
        assert!(csv.contains(kind.label()), "CSV must contain {:?} spans", kind);
    }
}
