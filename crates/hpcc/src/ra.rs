//! HPCC MPI RandomAccess (Figure 1d).
//!
//! Each rank generates LFSR updates destined (uniformly) for the whole
//! distributed table, buckets them by destination, and routes the buckets
//! — the `RA_SANDIA_OPT2` algorithm the paper also measured does this
//! with a hypercube-style exchange in log₂(p) stages, halving traffic per
//! stage. Local table updates are memory-latency bound. "The RA test is
//! very sensitive to network latency" (§II.A.3).

use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{FnProgram, Mpi, SimConfig, TraceSim};
use serde::Serialize;

/// Result of an MPI RandomAccess run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RaResult {
    /// Total updates routed.
    pub updates: u64,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Billions of updates per second.
    pub gups: f64,
}

/// The stock HPCC RandomAccess routing: updates are sent directly to
/// their destination ranks in small batches — O(p) distinct message
/// streams per rank instead of the hypercube's log₂(p) stages. The paper
/// measured both this and the optimized version (§II.A.3).
pub fn ra_run_stock(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    table_bytes_per_rank: u64,
    updates_per_rank: u64,
) -> RaResult {
    let mut sim = TraceSim::new(SimConfig::new(machine.clone(), ranks, mode));
    let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
        let p = mpi.size();
        // each rank exchanges its per-destination bucket with a sample of
        // destinations (deterministic stride sample keeps trace sizes
        // bounded; the timing per destination is what matters)
        let sample = 16.min(p - 1).max(1);
        let stride = ((p - 1) / sample).max(1);
        let bytes_per_dest = (updates_per_rank / (p as u64 - 1).max(1)).max(1) * 16;
        let rounds = 4.min((p - 1).div_ceil(sample));
        let simulated = sample * rounds;
        // each simulated exchange stands in for this many real ones:
        // carry their payload so the full volume crosses the wire
        let fold = (p - 1).div_ceil(simulated) as u64;
        let me = mpi.rank();
        for r in 0..rounds {
            for k in 0..sample {
                let off = 1 + ((k * stride + r) % (p - 1));
                let dst = (me + off) % p;
                let src = (me + p - off) % p;
                let tag = (r * sample + k) as u32;
                let bytes = bytes_per_dest * fold;
                mpi.sendrecv(dst, tag, bytes, src, tag, bytes);
            }
        }
        // the folded messages hide (fold-1) per-message software
        // overheads per simulated exchange: charge them as a delay
        let hidden = (p - 1).saturating_sub(simulated);
        if hidden > 0 {
            let o2 = machine_o2(mpi);
            mpi.delay(o2.scale(hidden as f64));
        }
        mpi.compute(Workload::RandomAccess {
            updates: updates_per_rank,
            table_bytes: table_bytes_per_rank,
        });
    }));
    let updates = updates_per_rank * ranks as u64;
    let seconds = res.makespan().as_secs();
    RaResult { updates, seconds, gups: updates as f64 / seconds / 1e9 }
}

// per-message software overhead placeholder — captured by closure,
// resolved at trace time (the machine is fixed per run)
fn machine_o2(_mpi: &Mpi) -> hpcsim_engine::SimTime {
    hpcsim_engine::SimTime::from_us_f64(2.4)
}

/// Run distributed RandomAccess: table of `table_bytes_per_rank` per rank,
/// `updates_per_rank` updates per rank, hypercube routing
/// (the `RA_SANDIA_OPT2` algorithm for power-of-two process counts).
pub fn ra_run(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    table_bytes_per_rank: u64,
    updates_per_rank: u64,
) -> RaResult {
    let mut sim = TraceSim::new(SimConfig::new(machine.clone(), ranks, mode));
    let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
        let p = mpi.size();
        let stages = (p as f64).log2().ceil() as u32;
        // Updates move through log2(p) hypercube stages; each stage
        // exchanges half the in-flight updates with the dimension partner
        // (16 bytes per update: index + value).
        let mut in_flight = updates_per_rank;
        for s in 0..stages {
            let partner = mpi.rank() ^ (1 << s);
            if partner < p {
                let bytes = (in_flight / 2).max(1) * 16;
                mpi.sendrecv(partner, 10 + s, bytes, partner, 10 + s, bytes);
            }
            in_flight = (in_flight / 2).max(1);
        }
        // Local application of the rank's share of all updates.
        mpi.compute(Workload::RandomAccess {
            updates: updates_per_rank,
            table_bytes: table_bytes_per_rank,
        });
    }));
    let updates = updates_per_rank * ranks as u64;
    let seconds = res.makespan().as_secs();
    RaResult { updates, seconds, gups: updates as f64 / seconds / 1e9 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};

    /// Fig 1d: "The two systems showed very similar performance and
    /// scalability trends" — RA parity despite different networks.
    #[test]
    fn parity_between_systems() {
        let args = (1u64 << 26, 1u64 << 18);
        let b = ra_run(&bluegene_p(), ExecMode::Vn, 256, args.0, args.1);
        let x = ra_run(&xt4_qc(), ExecMode::Vn, 256, args.0 * 4, args.1);
        let ratio = x.gups / b.gups;
        assert!(ratio > 0.3 && ratio < 3.0, "GUPS ratio {ratio:.2}");
    }

    /// Aggregate GUPS grows with rank count (both systems scaled well).
    #[test]
    fn gups_scales_with_ranks() {
        let m = bluegene_p();
        let small = ra_run(&m, ExecMode::Vn, 64, 1 << 26, 1 << 18);
        let large = ra_run(&m, ExecMode::Vn, 1024, 1 << 26, 1 << 18);
        assert!(large.gups > small.gups * 4.0, "{} -> {}", small.gups, large.gups);
    }

    /// Power-of-two rank counts use the full hypercube; odd sizes must
    /// still terminate (partners beyond p are skipped).
    #[test]
    fn non_power_of_two_ranks() {
        let r = ra_run(&bluegene_p(), ExecMode::Vn, 96, 1 << 24, 1 << 16);
        assert!(r.gups > 0.0);
    }

    /// §II.A.3: the paper measured both the stock router and
    /// RA_SANDIA_OPT2. The optimized hypercube must win at scale (its
    /// per-rank message count is log2(p), not p-1).
    #[test]
    fn sandia_opt2_beats_stock_at_scale() {
        let (tb, upr) = (1u64 << 26, 1u64 << 18);
        let opt = ra_run(&bluegene_p(), ExecMode::Vn, 1024, tb, upr);
        let stock = ra_run_stock(&bluegene_p(), ExecMode::Vn, 1024, tb, upr);
        assert!(
            opt.gups > stock.gups,
            "OPT2 {:.4} should beat stock {:.4} GUPS",
            opt.gups,
            stock.gups
        );
    }

    /// Stock routing still works and scales somewhat.
    #[test]
    fn stock_scales_weakly() {
        let a = ra_run_stock(&bluegene_p(), ExecMode::Vn, 64, 1 << 24, 1 << 16);
        let b = ra_run_stock(&bluegene_p(), ExecMode::Vn, 512, 1 << 24, 1 << 16);
        assert!(b.gups > a.gups, "{} -> {}", a.gups, b.gups);
    }
}
