//! HPCC MPI-parallel 1-D FFT (Figure 1b).
//!
//! The classic distributed large-FFT algorithm: view the N-point vector
//! as an n1×n2 matrix, local FFTs along one axis, a global Alltoall
//! transpose, twiddle + local FFTs along the other axis, and a final
//! transpose back. Communication is two full Alltoalls — which is why the
//! benchmark "stresses a system's memory hierarchy and network more than
//! HPL" (§II.A.3).

use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, TraceSim};
use serde::Serialize;

/// Result of an MPI FFT run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FftResult {
    /// Total vector length.
    pub n: u64,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Sustained GFlop/s (5·N·log₂N over wall time).
    pub gflops: f64,
}

/// Problem size from memory: HPCC sizes the FFT vector at roughly an
/// eighth of the HPL matrix footprint. We use `mem_fraction` of aggregate
/// memory in 16-byte complex elements, rounded down to a power of two.
pub fn fft_problem_size(machine: &MachineSpec, ranks: usize, mode: ExecMode, mem_fraction: f64) -> u64 {
    let per_task = mode.mem_per_task(machine.mem.capacity_bytes(), machine.cores_per_node);
    let elems = (per_task * ranks as f64 * mem_fraction / 16.0) as u64;
    if elems == 0 {
        return 1;
    }
    1u64 << (63 - elems.leading_zeros() as u64)
}

/// Run the distributed FFT of `n` points over `ranks` tasks.
pub fn fft_run(machine: &MachineSpec, mode: ExecMode, ranks: usize, n: u64) -> FftResult {
    let mut sim = TraceSim::new(SimConfig::new(machine.clone(), ranks, mode));
    let local = (n / ranks as u64).max(1);
    let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
        let p = mpi.size() as u64;
        // bytes each rank exchanges with each other rank per transpose
        let bytes_per_pair = (16 * local / p).max(16);
        // local FFTs along axis 1 (each rank: `local` points in rows)
        mpi.compute(Workload::Fft1d { n: local });
        mpi.alltoall(CommId::WORLD, bytes_per_pair);
        // twiddle scaling + local FFTs along axis 2
        mpi.compute(Workload::Custom {
            flops: 6.0 * local as f64,
            dram_bytes: 16.0 * local as f64,
            simd_eff: 0.5,
            serial_frac: 0.0,
        });
        mpi.compute(Workload::Fft1d { n: local });
        mpi.alltoall(CommId::WORLD, bytes_per_pair);
    }));
    let seconds = res.makespan().as_secs();
    let flops = 5.0 * n as f64 * (n as f64).log2();
    FftResult { n, seconds, gflops: flops / seconds / 1e9 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};

    #[test]
    fn problem_size_is_power_of_two() {
        let n = fft_problem_size(&bluegene_p(), 256, ExecMode::Vn, 0.3);
        assert!(n.is_power_of_two());
        assert!(n > 1 << 28, "n = {n}");
    }

    /// Fig 1(b): the XT's larger problem and memory bandwidth give it
    /// higher FFT throughput at equal process counts.
    #[test]
    fn xt_wins_fft_at_equal_ranks() {
        let ranks = 256;
        let n_b = fft_problem_size(&bluegene_p(), ranks, ExecMode::Vn, 0.3);
        let n_x = fft_problem_size(&xt4_qc(), ranks, ExecMode::Vn, 0.3);
        assert!(n_x > n_b);
        let b = fft_run(&bluegene_p(), ExecMode::Vn, ranks, n_b);
        let x = fft_run(&xt4_qc(), ExecMode::Vn, ranks, n_x);
        assert!(x.gflops > b.gflops, "XT {:.1} vs BG/P {:.1}", x.gflops, b.gflops);
    }

    /// Both systems scale: 4× the ranks on 4× the data gives ≥2.4× rate.
    #[test]
    fn fft_scales() {
        let m = bluegene_p();
        let a = fft_run(&m, ExecMode::Vn, 64, 1 << 28);
        let b = fft_run(&m, ExecMode::Vn, 256, 1 << 30);
        let s = b.gflops / a.gflops;
        assert!(s > 2.4, "scaling {s:.2}");
    }
}
