//! # hpcsim-hpcc
//!
//! The paper's micro-benchmarks and kernels, written as simulated-MPI
//! programs and run against the machine models:
//!
//! * [`hpl`] — High Performance Linpack on a P×Q process grid (HPCC HPL
//!   for Fig 1a, and the §II.C TOP500 configuration with power).
//! * [`epkernels`] — the single-process and embarrassingly-parallel HPCC
//!   tests: DGEMM, STREAM (Table 2's compute rows).
//! * [`fft`] — the MPI-parallel 1-D FFT (Fig 1b): local FFTs bracketed by
//!   Alltoall transposes.
//! * [`ptrans`] — parallel transpose (Fig 1c): pairwise block exchange
//!   across the grid diagonal, a bisection-bandwidth stress test.
//! * [`ra`] — MPI RandomAccess (Fig 1d): bucketed update routing.
//! * [`comm`] — latency/bandwidth probes: ping-pong and the random-ring
//!   tests (Table 2's communication rows).
//! * [`halo`] — the Wallcraft HALO nearest-neighbour exchange with
//!   selectable protocol, process mapping and grid shape (Fig 2).
//! * [`imb`] — the Intel MPI Benchmark Allreduce and Bcast sweeps
//!   (Fig 3), including the single- vs double-precision Allreduce split.

pub mod comm;
pub mod epkernels;
pub mod fft;
pub mod halo;
pub mod hpl;
pub mod imb;
pub mod ptrans;
pub mod ra;

pub use comm::{pingpong, random_ring, RingResult};
pub use epkernels::{dgemm_rate, stream_triad_rate, EpMode};
pub use fft::{fft_run, FftResult};
pub use halo::{
    halo_eval_traces, halo_eval_traces_faulty, halo_phase_pressure, halo_record_exchange,
    halo_run, halo_run_faulty, halo_run_mapped, halo_run_mapped_with, halo_run_probe,
    halo_run_probe_with, halo_run_traces_with, halo_traces, HaloConfig, HaloProtocol,
};
pub use hpl::{hpl_problem_size, hpl_run, top500_run, HplConfig, HplResult, Top500Result};
pub use imb::{imb_allreduce, imb_allreduce_probe, imb_bcast, imb_bcast_probe, ImbPoint};
pub use ptrans::{ptrans_run, PtransResult};
pub use ra::{ra_run, ra_run_stock, RaResult};
