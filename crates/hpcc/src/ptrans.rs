//! HPCC PTRANS (Figure 1c).
//!
//! `A ← Aᵀ + C` over a P×Q-distributed matrix: every rank exchanges its
//! block with its transpose partner across the grid diagonal, then adds.
//! Pure bisection-bandwidth stress — "exhibits high spatial locality and
//! stresses a system's network bisection bandwidth" (§II.A.3). Figure 1c
//! shows the XT matching BG/P in absolute rate but with far more
//! variability, which the paper attributes to allocator fragmentation —
//! reproduced here via the `Placement` of the run.

use hpcsim_machine::{ExecMode, MachineSpec};
use hpcsim_mpi::{FnProgram, Mpi, RankLayout, SimConfig, TraceSim};
use hpcsim_topo::{Grid2D, Placement};
use serde::Serialize;

/// Result of a PTRANS run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PtransResult {
    /// Matrix order.
    pub n: u64,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Effective transpose bandwidth, GB/s (8·N² bytes over wall time).
    pub gbps: f64,
}

/// Run PTRANS of order `n` over `ranks` tasks with the given placement
/// (use `Placement::Fragmented` to reproduce the XT's variability).
pub fn ptrans_run(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    n: u64,
    placement: Placement,
) -> PtransResult {
    let grid = Grid2D::near_square(ranks);
    let layout = if machine.id.is_bluegene() {
        RankLayout::default_for(machine, ranks, mode)
    } else {
        RankLayout::xt(machine, ranks, mode, placement)
    };
    let mut sim = TraceSim::new(SimConfig { machine: machine.clone(), mode, threads: 1, layout });
    let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
        let (r, c) = grid.pos(mpi.rank());
        // block owned by this rank
        let block_rows = n / grid.rows as u64;
        let block_cols = n / grid.cols as u64;
        let bytes = 8 * block_rows * block_cols;
        // Transpose partner. The pairing must be an involution or the
        // sendrecv deadlocks: on a square grid it is the true transpose
        // partner (r,c)<->(c,r); on rectangular grids we use the
        // antipodal pairing, which crosses the bisection just as hard.
        let partner = if grid.rows == grid.cols {
            grid.rank(c, r)
        } else {
            grid.size() - 1 - mpi.rank()
        };
        if partner != mpi.rank() {
            mpi.sendrecv(partner, 3, bytes, partner, 3, bytes);
        }
        // local transpose + add: bandwidth-bound, 3 touches per element
        mpi.compute(hpcsim_machine::Workload::Stencil {
            points: block_rows * block_cols,
            flops_per_point: 1.0,
            bytes_per_point: 24.0,
        });
    }));
    let seconds = res.makespan().as_secs();
    PtransResult { n, seconds, gbps: 8.0 * (n as f64).powi(2) / seconds / 1e9 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};

    const N: u64 = 65_536;

    #[test]
    fn similar_absolute_rates_across_machines() {
        // Fig 1c: "Both systems exhibited similar absolute performance"
        let b = ptrans_run(&bluegene_p(), ExecMode::Vn, 1024, N, Placement::Compact);
        let x = ptrans_run(&xt4_qc(), ExecMode::Vn, 1024, N, Placement::Compact);
        let ratio = x.gbps / b.gbps;
        assert!(ratio > 0.3 && ratio < 4.0, "PTRANS ratio {ratio:.2}");
    }

    #[test]
    fn fragmentation_adds_variability() {
        // Fig 1c: XT runs scatter; different allocations, different rates.
        let rates: Vec<f64> = (0..4)
            .map(|seed| {
                ptrans_run(
                    &xt4_qc(),
                    ExecMode::Vn,
                    256,
                    N,
                    Placement::Fragmented { spread: 2.0, seed },
                )
                .gbps
            })
            .collect();
        let compact = ptrans_run(&xt4_qc(), ExecMode::Vn, 256, N, Placement::Compact).gbps;
        // fragmented runs are slower than compact...
        assert!(rates.iter().all(|&r| r < compact * 1.05), "{rates:?} vs {compact}");
        // ...and not all identical (allocation lottery)
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.005, "variability {:.4}", max / min);
    }

    #[test]
    fn scales_with_ranks() {
        let small = ptrans_run(&bluegene_p(), ExecMode::Vn, 64, N, Placement::Compact);
        let large = ptrans_run(&bluegene_p(), ExecMode::Vn, 1024, N * 4, Placement::Compact);
        assert!(large.gbps > small.gbps * 2.0);
    }
}
