//! High Performance Linpack on the simulator.
//!
//! The blocked right-looking factorization over a P×Q process grid,
//! N/NB elimination steps. Each step: the owner column factors the
//! panel, broadcasts it along process rows; pivot rows swap within
//! process columns; the block row of U is broadcast down columns; and
//! every rank runs its share of the trailing DGEMM update. Since steps
//! shrink smoothly as the factorization proceeds, we simulate a sample
//! of steps across the progress axis and integrate — the same flop
//! accounting HPL's own projections use (total flops = 2N³/3 + lower
//! order).

use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{Mpi, RankLayout, SimConfig, TraceSim};
use hpcsim_net::DType;
use hpcsim_topo::Grid2D;
use serde::Serialize;

/// HPL run configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HplConfig {
    /// Matrix order.
    pub n: u64,
    /// Panel width.
    pub nb: u64,
    /// Process grid (P rows × Q cols); `P·Q` = ranks.
    pub grid: Grid2D,
    /// Progress-axis sample count for the step integration.
    pub samples: usize,
}

/// Result of an HPL run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HplResult {
    /// Wall time of the factorization + solve, seconds.
    pub seconds: f64,
    /// Sustained GFlop/s (2N³/3 + 3N²/2 over wall time).
    pub gflops: f64,
    /// Fraction of machine peak.
    pub efficiency: f64,
}

/// HPCC guidance: a problem filling `mem_fraction` of aggregate memory.
pub fn hpl_problem_size(machine: &MachineSpec, ranks: usize, mode: ExecMode, mem_fraction: f64) -> u64 {
    let per_task = mode.mem_per_task(machine.mem.capacity_bytes(), machine.cores_per_node);
    let total = per_task * ranks as f64 * mem_fraction;
    ((total / 8.0).sqrt() as u64 / 2) * 2
}

/// Simulate one sampled elimination step at progress `f ∈ [0,1)` and
/// return nothing — ops are recorded into `mpi`.
#[allow(clippy::too_many_arguments)]
fn record_step(
    mpi: &mut Mpi,
    cfg: &HplConfig,
    row_comm: hpcsim_mpi::CommId,
    col_comm: hpcsim_mpi::CommId,
    f: f64,
) {
    let p = cfg.grid.rows as f64;
    let q = cfg.grid.cols as f64;
    let rem = (cfg.n as f64 * (1.0 - f)).max(cfg.nb as f64); // remaining order
    let rows_local = (rem / p).ceil() as u64;
    let cols_local = (rem / q).ceil() as u64;
    let nb = cfg.nb;

    // Panel factorization: the owning column's ranks factor an
    // rem×NB panel; ownership round-robins over columns, so charge the
    // amortized 1/Q share to everyone.
    let panel_flops = (2.0 * nb as f64 * nb as f64 * rows_local as f64) / q;
    mpi.compute(Workload::Custom {
        flops: panel_flops,
        dram_bytes: 8.0 * nb as f64 * rows_local as f64 / q,
        simd_eff: 0.5, // pivot search + scaling vectorize poorly
        serial_frac: 0.1,
    });

    // Panel broadcast along the process row.
    let panel_bytes = 8 * rows_local * nb;
    mpi.bcast(row_comm, panel_bytes);

    // Pivot row swaps within the process column: NB rows of the local
    // block width move between column peers.
    let (my_row, my_col) = cfg.grid.pos(mpi.rank());
    if cfg.grid.rows > 1 {
        // ring exchange within the process column: send to the next row,
        // receive from the previous (a matched, deadlock-free pairing)
        let next = cfg.grid.rank((my_row + 1) % cfg.grid.rows, my_col);
        let prev = cfg.grid.rank((my_row + cfg.grid.rows - 1) % cfg.grid.rows, my_col);
        let swap_bytes = 8 * nb * cols_local / cfg.grid.rows as u64;
        mpi.sendrecv(next, 1, swap_bytes.max(8), prev, 1, swap_bytes.max(8));
    }

    // U block-row broadcast down the process column.
    let u_bytes = 8 * nb * cols_local;
    mpi.bcast(col_comm, u_bytes);

    // Trailing update: local share of (rem × rem) -= (rem × NB)(NB × rem).
    mpi.compute(Workload::LuUpdate { m: rows_local, n: cols_local, k: nb });
}

/// Run HPL with `cfg` on `machine` in `mode`.
pub fn hpl_run(machine: &MachineSpec, mode: ExecMode, cfg: &HplConfig) -> HplResult {
    let ranks = cfg.grid.size();
    let layout = RankLayout::default_for(machine, ranks, mode);
    let mut sim = TraceSim::new(SimConfig {
        machine: machine.clone(),
        mode,
        threads: 1,
        layout,
    });

    // row and column communicators
    let mut row_ids = Vec::with_capacity(cfg.grid.rows);
    for r in 0..cfg.grid.rows {
        row_ids.push(sim.register_comm((0..cfg.grid.cols).map(|c| cfg.grid.rank(r, c)).collect()));
    }
    let mut col_ids = Vec::with_capacity(cfg.grid.cols);
    for c in 0..cfg.grid.cols {
        col_ids.push(sim.register_comm((0..cfg.grid.rows).map(|r| cfg.grid.rank(r, c)).collect()));
    }

    let grid = cfg.grid;
    let cfg2 = cfg.clone();
    let samples = cfg.samples.max(2);
    let res = sim.run(&hpcsim_mpi::FnProgram(move |mpi: &mut Mpi| {
        let (my_row, my_col) = grid.pos(mpi.rank());
        let row_comm = row_ids[my_row];
        let col_comm = col_ids[my_col];
        for s in 0..samples {
            let f = s as f64 / samples as f64;
            record_step(mpi, &cfg2, row_comm, col_comm, f);
        }
        // final allreduce: residual check
        mpi.allreduce(hpcsim_mpi::CommId::WORLD, 8, DType::F64);
    }));

    // The simulated makespan covers `samples` steps spread evenly across
    // the progress axis; the real run has N/NB steps with the same mean
    // per-step cost (by the sampling construction), so scale.
    let steps_total = (cfg.n / cfg.nb).max(1) as f64;
    let seconds = res.makespan().as_secs() * steps_total / samples as f64;
    let flops = 2.0 / 3.0 * (cfg.n as f64).powi(3) + 1.5 * (cfg.n as f64).powi(2);
    let gflops = flops / seconds / 1e9;
    let peak = machine.core_peak_flops() * ranks as f64 / 1e9;
    HplResult { seconds, gflops, efficiency: gflops / peak }
}

/// Result of the §II.C TOP500 run including power.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Top500Result {
    /// The HPL performance result.
    pub hpl: HplResult,
    /// Aggregate power during the run, kW.
    pub power_kw: f64,
    /// The Green500 metric.
    pub mflops_per_watt: f64,
}

/// The paper's TOP500 configuration: N = 614399, NB = 96, 64×128 grid on
/// the ORNL BG/P (8192 cores, VN mode), with power metering.
pub fn top500_run(machine: &MachineSpec) -> Top500Result {
    let cfg = HplConfig { n: 614_399, nb: 96, grid: Grid2D::new(64, 128), samples: 12 };
    let hpl = hpl_run(machine, ExecMode::Vn, &cfg);
    let pm = hpcsim_power::PowerModel::new(machine.clone());
    let cores = cfg.grid.size() as u64;
    let watts = pm.aggregate_w(cores, hpcsim_power::UTIL_HPL);
    Top500Result {
        hpl,
        power_kw: watts / 1e3,
        mflops_per_watt: hpl.gflops * 1e3 / watts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};

    fn small_cfg(ranks: usize, n: u64) -> HplConfig {
        HplConfig { n, nb: 96, grid: Grid2D::near_square(ranks), samples: 6 }
    }

    #[test]
    fn problem_size_follows_memory() {
        let bgp = hpl_problem_size(&bluegene_p(), 4096, ExecMode::Vn, 0.8);
        let xt = hpl_problem_size(&xt4_qc(), 4096, ExecMode::Vn, 0.8);
        // XT has 4x the node memory -> 2x the matrix order
        let ratio = xt as f64 / bgp as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
        // BG/P VN 4096 tasks × 0.5 GiB × 0.8 -> N ≈ 0.46M
        assert!(bgp > 400_000 && bgp < 500_000, "N = {bgp}");
    }

    #[test]
    fn hpl_efficiency_in_plausible_band() {
        let cfg = small_cfg(64, 60_000);
        let r = hpl_run(&bluegene_p(), ExecMode::Vn, &cfg);
        assert!(
            r.efficiency > 0.55 && r.efficiency < 0.92,
            "BG/P HPL efficiency {:.3}",
            r.efficiency
        );
    }

    #[test]
    fn xt_outrates_bgp_per_process() {
        let n_bgp = 40_000;
        let r_bgp = hpl_run(&bluegene_p(), ExecMode::Vn, &small_cfg(64, n_bgp));
        let r_xt = hpl_run(&xt4_qc(), ExecMode::Vn, &small_cfg(64, n_bgp * 2));
        let ratio = r_xt.gflops / r_bgp.gflops;
        assert!(
            ratio > 1.8 && ratio < 3.2,
            "XT/BGP HPL ratio {ratio:.2} (clock ratio ~2.5 expected)"
        );
    }

    #[test]
    fn hpl_scales_with_ranks() {
        // weak-ish scaling: 4x ranks with 2x N (constant memory/rank)
        let r64 = hpl_run(&bluegene_p(), ExecMode::Vn, &small_cfg(64, 40_000));
        let r256 = hpl_run(&bluegene_p(), ExecMode::Vn, &small_cfg(256, 80_000));
        let speedup = r256.gflops / r64.gflops;
        assert!(speedup > 3.0, "4x ranks should give >3x rate, got {speedup:.2}");
    }

    #[test]
    fn top500_reproduces_section_iic() {
        let r = top500_run(&bluegene_p());
        // paper: 21.4 TF (we accept the band 17–26 TF)
        assert!(
            r.hpl.gflops > 17_000.0 && r.hpl.gflops < 26_000.0,
            "TOP500 GF = {:.0}",
            r.hpl.gflops
        );
        // paper: 310.93 MF/W (Green500 №5); Table 3 reports 347.6
        assert!(
            r.mflops_per_watt > 270.0 && r.mflops_per_watt < 420.0,
            "MF/W = {:.1}",
            r.mflops_per_watt
        );
        // ~63 kW aggregate
        assert!(r.power_kw > 55.0 && r.power_kw < 72.0, "power {:.1} kW", r.power_kw);
    }
}
