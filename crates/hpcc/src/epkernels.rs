//! Single-process and embarrassingly-parallel HPCC tests (Table 2).
//!
//! These have no communication: they probe the node model directly.
//! "Single process" (SP) runs one task on an otherwise idle node;
//! "embarrassingly parallel" (EP) runs one task per core simultaneously.

use hpcsim_machine::{ExecMode, MachineSpec, NodeModel, Workload};
use serde::{Deserialize, Serialize};

/// SP vs EP mode for the node-local tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpMode {
    /// One process on the node (HPCC "single process").
    Single,
    /// One process per core (HPCC "embarrassingly parallel").
    Parallel,
}

impl EpMode {
    fn exec(self) -> ExecMode {
        match self {
            EpMode::Single => ExecMode::Smp,
            EpMode::Parallel => ExecMode::Vn,
        }
    }
}

/// Per-process DGEMM rate in GFlop/s for a DGEMM of order `n`.
pub fn dgemm_rate(machine: &MachineSpec, mode: EpMode, n: u64) -> f64 {
    let model = NodeModel::new(machine.clone());
    model.sustained_flops(&Workload::Dgemm { n }, mode.exec(), 1) / 1e9
}

/// Per-process STREAM triad bandwidth in GB/s over `n` elements.
pub fn stream_triad_rate(machine: &MachineSpec, mode: EpMode, n: u64) -> f64 {
    let model = NodeModel::new(machine.clone());
    // STREAM convention: count 24 bytes/element (no write-allocate)
    let t = model.time(&Workload::StreamTriad { n }, mode.exec(), 1).as_secs();
    24.0 * n as f64 / t / 1e9
}

/// Per-process FFT rate in GFlop/s for an n-point 1-D FFT (stock kernel).
pub fn fft_rate(machine: &MachineSpec, mode: EpMode, n: u64) -> f64 {
    let model = NodeModel::new(machine.clone());
    model.sustained_flops(&Workload::Fft1d { n }, mode.exec(), 1) / 1e9
}

/// Per-process RandomAccess rate in GUP/s against a `table_bytes` table.
pub fn ra_rate(machine: &MachineSpec, mode: EpMode, table_bytes: u64) -> f64 {
    let model = NodeModel::new(machine.clone());
    let updates = 4 * table_bytes / 8; // HPCC default: 4 updates per word
    let t = model
        .time(&Workload::RandomAccess { updates, table_bytes }, mode.exec(), 1)
        .as_secs();
    updates as f64 / t / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};

    /// Table 2 prose: "the BG/P's lower clock rate [is] the likely reason
    /// for its smaller processing rate on the DGEMM".
    #[test]
    fn dgemm_xt_beats_bgp() {
        let b = dgemm_rate(&bluegene_p(), EpMode::Parallel, 2000);
        let x = dgemm_rate(&xt4_qc(), EpMode::Parallel, 2000);
        assert!(x > 2.0 * b, "XT {x:.2} GF vs BG/P {b:.2} GF");
        // absolute plausibility: BG/P ~3 GF/process of 3.4 peak
        assert!(b > 2.6 && b < 3.3);
    }

    /// Table 2 prose: BG/P STREAM shows "higher absolute bandwidth and
    /// less of a performance decline between the single process and
    /// embarrassingly parallel cases than the XT".
    #[test]
    fn stream_story_matches_table2() {
        let n = 4_000_000;
        let b_sp = stream_triad_rate(&bluegene_p(), EpMode::Single, n);
        let b_ep = stream_triad_rate(&bluegene_p(), EpMode::Parallel, n);
        let x_sp = stream_triad_rate(&xt4_qc(), EpMode::Single, n);
        let x_ep = stream_triad_rate(&xt4_qc(), EpMode::Parallel, n);
        assert!(b_ep > x_ep, "EP: BG/P {b_ep:.2} vs XT {x_ep:.2}");
        let b_decline = b_sp / b_ep;
        let x_decline = x_sp / x_ep;
        assert!(b_decline < x_decline, "declines: BG/P {b_decline:.2} vs XT {x_decline:.2}");
    }

    /// FFT: the XT wins (higher clock, larger caches), by less than DGEMM's
    /// margin relative to peak.
    #[test]
    fn fft_rates_plausible() {
        let b = fft_rate(&bluegene_p(), EpMode::Parallel, 1 << 20);
        let x = fft_rate(&xt4_qc(), EpMode::Parallel, 1 << 20);
        assert!(x > b, "XT {x:.3} vs BG/P {b:.3}");
        assert!(b > 0.2 && b < 1.5, "BG/P FFT {b:.3} GF");
    }

    /// RandomAccess per process: both are memory-latency/bandwidth bound
    /// and land within the same order of magnitude (Fig 1d's parity).
    #[test]
    fn ra_rates_same_order() {
        let b = ra_rate(&bluegene_p(), EpMode::Parallel, 1 << 28);
        let x = ra_rate(&xt4_qc(), EpMode::Parallel, 1 << 28);
        let ratio = x / b;
        assert!(ratio > 0.25 && ratio < 4.0, "GUPS ratio {ratio:.2}");
    }
}
