//! The Wallcraft HALO benchmark (Figure 2).
//!
//! Simulates the nearest-neighbour exchange of a 1–2 row/column halo from
//! a 2-D array on a virtual processor grid (§II.B.1): exchange N words
//! with the logical north and 2N with the south; once those arrive,
//! N words west and 2N east. The suite varies three axes, exactly as the
//! paper's Figure 2 does:
//!
//! * (a,b) **MPI-1 protocol**: irecv-first, isend-first, or
//!   `MPI_Sendrecv` — the engine's unexpected-copy and serialization
//!   semantics differentiate them;
//! * (c,d) **process→processor mapping**: the predefined BG/P orderings;
//! * (e,f) **virtual grid shape** at fixed core count.

use hpcsim_engine::SimTime;
use hpcsim_machine::{ExecMode, MachineSpec};
use hpcsim_mpi::{FnProgram, Mpi, RankLayout, SimConfig, SweepEngine, TraceDag, TraceSim};
use hpcsim_net::{FlowHandle, FlowTracker};
use hpcsim_topo::{Grid2D, Mapping};
use serde::{Deserialize, Serialize};

/// Which MPI-1 protocol variant performs the exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HaloProtocol {
    /// Post both receives, then both sends, then wait (best overlap).
    IrecvIsend,
    /// Sends first, receives after (risks unexpected-message copies).
    IsendIrecv,
    /// Two `MPI_Sendrecv` calls per direction pair (serializes).
    Sendrecv,
}

impl HaloProtocol {
    /// All protocol variants, for sweeps.
    pub fn all() -> [HaloProtocol; 3] {
        [HaloProtocol::IrecvIsend, HaloProtocol::IsendIrecv, HaloProtocol::Sendrecv]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            HaloProtocol::IrecvIsend => "MPI_IRECV/ISEND",
            HaloProtocol::IsendIrecv => "MPI_ISEND/IRECV",
            HaloProtocol::Sendrecv => "MPI_SENDRECV",
        }
    }
}

/// A HALO experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloConfig {
    /// Virtual process grid (e.g. 128×64 for 8192 cores).
    pub grid: Grid2D,
    /// Words (4 bytes each) per single-width halo row/column.
    pub words: u64,
    /// Protocol variant.
    pub protocol: HaloProtocol,
    /// Exchange repetitions (result is per-exchange).
    pub reps: u32,
}

/// Record one halo exchange round into `mpi` (two phases: north/south,
/// then west/east). Public so benches can rebuild the exact trace the
/// suite replays.
pub fn halo_record_exchange(
    mpi: &mut Mpi,
    grid: Grid2D,
    words: u64,
    protocol: HaloProtocol,
    round: u32,
) {
    let me = mpi.rank();
    let north = grid.north(me);
    let south = grid.south(me);
    let west = grid.west(me);
    let east = grid.east(me);
    let b1 = 4 * words; // N words north/west
    let b2 = 8 * words; // 2N words south/east
    let t = round * 8;
    match protocol {
        HaloProtocol::IrecvIsend => {
            // phase 1: north/south
            let r1 = mpi.irecv(south, t, b1);
            let r2 = mpi.irecv(north, t + 1, b2);
            let s1 = mpi.isend(north, t, b1);
            let s2 = mpi.isend(south, t + 1, b2);
            mpi.waitall(&[r1, r2, s1, s2]);
            // phase 2: west/east
            let r3 = mpi.irecv(east, t + 2, b1);
            let r4 = mpi.irecv(west, t + 3, b2);
            let s3 = mpi.isend(west, t + 2, b1);
            let s4 = mpi.isend(east, t + 3, b2);
            mpi.waitall(&[r3, r4, s3, s4]);
        }
        HaloProtocol::IsendIrecv => {
            let s1 = mpi.isend(north, t, b1);
            let s2 = mpi.isend(south, t + 1, b2);
            let r1 = mpi.irecv(south, t, b1);
            let r2 = mpi.irecv(north, t + 1, b2);
            mpi.waitall(&[s1, s2, r1, r2]);
            let s3 = mpi.isend(west, t + 2, b1);
            let s4 = mpi.isend(east, t + 3, b2);
            let r3 = mpi.irecv(east, t + 2, b1);
            let r4 = mpi.irecv(west, t + 3, b2);
            mpi.waitall(&[s3, s4, r3, r4]);
        }
        HaloProtocol::Sendrecv => {
            mpi.sendrecv(north, t, b1, south, t, b1);
            mpi.sendrecv(south, t + 1, b2, north, t + 1, b2);
            mpi.sendrecv(west, t + 2, b1, east, t + 2, b1);
            mpi.sendrecv(east, t + 3, b2, west, t + 3, b2);
        }
    }
}

/// Record the trace a HALO experiment replays: one rank program per
/// grid cell, `reps` exchange rounds. The trace depends only on the
/// virtual grid / words / protocol — not on machine, mapping or mode —
/// which is what makes mapping sweeps cheap and DAG compilation sound.
pub fn halo_traces(cfg: &HaloConfig) -> Vec<Vec<hpcsim_mpi::Op>> {
    let grid = cfg.grid;
    let (words, protocol, reps) = (cfg.words, cfg.protocol, cfg.reps);
    TraceSim::trace_program(
        &FnProgram(move |mpi: &mut Mpi| {
            for round in 0..reps {
                halo_record_exchange(mpi, grid, words, protocol, round);
            }
        }),
        cfg.grid.size(),
        1,
    )
}

fn halo_layout(machine: &MachineSpec, mode: ExecMode, mapping: Mapping, ranks: usize) -> RankLayout {
    if machine.id.is_bluegene() {
        RankLayout::bluegene(machine, ranks, mode, mapping)
    } else {
        RankLayout::default_for(machine, ranks, mode)
    }
}

/// Run a HALO experiment; returns seconds per exchange (makespan / reps).
pub fn halo_run(
    machine: &MachineSpec,
    mode: ExecMode,
    mapping: Mapping,
    cfg: &HaloConfig,
) -> f64 {
    halo_run_mapped(machine, mode, &[mapping], cfg)[0]
}

/// Run one HALO experiment under several rank→processor mappings with
/// the process-global sweep engine ([`hpcsim_mpi::sweep_engine`]). The
/// trace depends only on the virtual grid / words / protocol — not the
/// mapping — so it is recorded once and re-evaluated per mapping, which
/// is what makes Fig 2(c,d)'s mapping sweeps cheap.
pub fn halo_run_mapped(
    machine: &MachineSpec,
    mode: ExecMode,
    mappings: &[Mapping],
    cfg: &HaloConfig,
) -> Vec<f64> {
    halo_run_mapped_with(machine, mode, mappings, cfg, hpcsim_mpi::sweep_engine())
}

/// [`halo_run_mapped`] with an explicit engine. [`SweepEngine::Dag`]
/// compiles the trace once and evaluates each mapping in a single
/// critical-path pass — but only where that is provably exact
/// ([`TraceDag::exact_for`], i.e. contention-flat machines); on a
/// contended machine it falls back to per-mapping replay, so results
/// are identical under either engine selection.
pub fn halo_run_mapped_with(
    machine: &MachineSpec,
    mode: ExecMode,
    mappings: &[Mapping],
    cfg: &HaloConfig,
    engine: SweepEngine,
) -> Vec<f64> {
    halo_run_traces_with(machine, mode, mappings, cfg, &halo_traces(cfg), engine)
}

/// [`halo_run_mapped_with`] over traces the caller already recorded
/// (they must be `halo_traces(cfg)`). Timed sweep harnesses use this to
/// keep trace recording — identical work under either engine — out of
/// both timed regions.
pub fn halo_run_traces_with(
    machine: &MachineSpec,
    mode: ExecMode,
    mappings: &[Mapping],
    cfg: &HaloConfig,
    traces: &[Vec<hpcsim_mpi::Op>],
    engine: SweepEngine,
) -> Vec<f64> {
    let ranks = cfg.grid.size();
    if engine == SweepEngine::Dag {
        if TraceDag::exact_for(machine) {
            let dag = TraceDag::compile_world(traces);
            let cfg_pts: Vec<SimConfig> = mappings
                .iter()
                .map(|&mapping| SimConfig {
                    machine: machine.clone(),
                    mode,
                    threads: 1,
                    layout: halo_layout(machine, mode, mapping, ranks),
                })
                .collect();
            return dag
                .evaluate_many(&cfg_pts)
                .iter()
                .map(|res| res.makespan().as_secs() / cfg.reps as f64)
                .collect();
        }
        hpcsim_mpi::note_fallback_contention(mappings.len() as u64);
    }
    mappings
        .iter()
        .map(|&mapping| {
            let layout = halo_layout(machine, mode, mapping, ranks);
            let mut sim =
                TraceSim::new(SimConfig { machine: machine.clone(), mode, threads: 1, layout });
            sim.replay_traces(traces).makespan().as_secs() / cfg.reps as f64
        })
        .collect()
}

/// Evaluate a single (machine, mode, mapping) point from traces the
/// caller already holds (they must be `halo_traces(cfg)`), optionally
/// through a pre-compiled DAG. This is the scenario cache's warm path:
/// tier 2 hands back the shared trace (and its once-compiled DAG) and
/// the point costs one replay — or one critical-path pass where the DAG
/// is exact ([`TraceDag::exact_for`]). Bit-identical to
/// [`halo_run_mapped_with`] on the same point.
pub fn halo_eval_traces(
    machine: &MachineSpec,
    mode: ExecMode,
    mapping: Mapping,
    cfg: &HaloConfig,
    traces: &[Vec<hpcsim_mpi::Op>],
    dag: Option<&TraceDag>,
) -> f64 {
    let ranks = cfg.grid.size();
    let layout = halo_layout(machine, mode, mapping, ranks);
    let sim_cfg = SimConfig { machine: machine.clone(), mode, threads: 1, layout };
    let res = match dag {
        Some(d) if TraceDag::exact_for(machine) => d.evaluate(&sim_cfg),
        _ => {
            if dag.is_some() {
                // a DAG was offered but is inexact on this machine
                hpcsim_mpi::note_fallback_contention(1);
            }
            TraceSim::new(sim_cfg).replay_traces(traces)
        }
    };
    res.makespan().as_secs() / cfg.reps as f64
}

/// [`halo_eval_traces`] under an armed fault plan (always event-queue
/// replay: fault injection needs the full engine). Errors are the same
/// diagnosed stalls [`halo_run_faulty`] reports.
pub fn halo_eval_traces_faulty(
    machine: &MachineSpec,
    mode: ExecMode,
    mapping: Mapping,
    cfg: &HaloConfig,
    traces: &[Vec<hpcsim_mpi::Op>],
    plan: &hpcsim_faults::FaultPlan,
) -> Result<f64, hpcsim_mpi::SimError> {
    let ranks = cfg.grid.size();
    let layout = halo_layout(machine, mode, mapping, ranks);
    let mut sim = TraceSim::new(SimConfig { machine: machine.clone(), mode, threads: 1, layout });
    sim.set_faults(plan);
    Ok(sim.try_replay_traces(traces)?.makespan().as_secs() / cfg.reps as f64)
}

/// Convenience: microseconds per exchange.
pub fn halo_us(machine: &MachineSpec, mode: ExecMode, mapping: Mapping, cfg: &HaloConfig) -> f64 {
    halo_run(machine, mode, mapping, cfg) * 1e6
}

/// [`halo_run`] under an armed fault plan: seconds per exchange when the
/// job survives (detours and retransmits included in the time), or the
/// diagnosed [`hpcsim_mpi::SimError`] when the plan cuts every route to
/// some destination or exhausts a retransmit budget.
pub fn halo_run_faulty(
    machine: &MachineSpec,
    mode: ExecMode,
    mapping: Mapping,
    cfg: &HaloConfig,
    plan: &hpcsim_faults::FaultPlan,
) -> Result<f64, hpcsim_mpi::SimError> {
    halo_eval_traces_faulty(machine, mode, mapping, cfg, &halo_traces(cfg), plan)
}

/// [`halo_run`] with an observability sink: returns the seconds per
/// exchange plus the full [`hpcsim_mpi::SimResult`] the tracer observed
/// (the probe layer needs the per-rank finish times to cross-check span
/// tiling).
pub fn halo_run_probe<T: hpcsim_probe::Tracer>(
    machine: &MachineSpec,
    mode: ExecMode,
    mapping: Mapping,
    cfg: &HaloConfig,
    tracer: &mut T,
) -> (f64, hpcsim_mpi::SimResult) {
    halo_run_probe_with(machine, mode, mapping, cfg, None, tracer)
}

/// [`halo_run_probe`] with an optional armed fault plan. A fault-induced
/// stall panics with the [`hpcsim_mpi::SimError`] diagnostic — traced
/// batteries run under the panic-isolating harness, which turns that
/// into a structured scenario failure.
pub fn halo_run_probe_with<T: hpcsim_probe::Tracer>(
    machine: &MachineSpec,
    mode: ExecMode,
    mapping: Mapping,
    cfg: &HaloConfig,
    plan: Option<&hpcsim_faults::FaultPlan>,
    tracer: &mut T,
) -> (f64, hpcsim_mpi::SimResult) {
    let ranks = cfg.grid.size();
    let traces = halo_traces(cfg);
    let layout = halo_layout(machine, mode, mapping, ranks);
    let mut sim = TraceSim::new(SimConfig { machine: machine.clone(), mode, threads: 1, layout });
    if let Some(p) = plan {
        sim.set_faults(p);
    }
    let res = sim.replay_traces_probe(&traces, tracer);
    (res.makespan().as_secs() / cfg.reps as f64, res)
}

/// Sanity floor used by tests: an exchange can't beat four message
/// latencies.
pub fn latency_floor(machine: &MachineSpec) -> SimTime {
    (machine.nic.o_send + machine.nic.o_recv) * 2
}

/// Peak link/endpoint concurrency of each halo phase (north/south, then
/// west/east) under `mapping` — the congestion diagnostic behind Fig
/// 2(c,d)'s mapping spread: a mapping is bandwidth-hostile exactly when
/// its halo flows pile onto the same torus links.
///
/// All of a phase's flows are registered at once through
/// [`FlowTracker::acquire_phase`]'s difference-array bulk path, so the
/// cost is O(ranks + links) per phase rather than O(ranks × hops).
/// On-node flows (VN-mode neighbours sharing a node) bypass the torus
/// and are excluded, mirroring the wire model's shared-memory fast path.
pub fn halo_phase_pressure(
    machine: &MachineSpec,
    mode: ExecMode,
    mapping: Mapping,
    grid: Grid2D,
) -> [u32; 2] {
    let ranks = grid.size();
    let layout = halo_layout(machine, mode, mapping, ranks);
    let torus = layout.torus;
    let mut tracker = FlowTracker::new(&torus);
    let mut peaks = [0u32; 2];
    let mut flows: Vec<FlowHandle> = Vec::with_capacity(2 * ranks);
    for (phase, peak) in peaks.iter_mut().enumerate() {
        flows.clear();
        for rank in 0..ranks {
            let dsts = if phase == 0 {
                [grid.north(rank), grid.south(rank)]
            } else {
                [grid.west(rank), grid.east(rank)]
            };
            for dst in dsts {
                let src_node = layout.node_of_rank[rank];
                let dst_node = layout.node_of_rank[dst];
                if src_node == dst_node {
                    continue;
                }
                let segs = torus.route_segs(torus.coord(src_node), torus.coord(dst_node));
                flows.push(FlowHandle::new(segs, src_node, dst_node));
            }
        }
        *peak = tracker.acquire_phase(&flows);
        tracker.release_phase(&flows);
    }
    debug_assert!(tracker.is_quiescent());
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::bluegene_p;

    fn cfg(grid: Grid2D, words: u64, protocol: HaloProtocol) -> HaloConfig {
        HaloConfig { grid, words, protocol, reps: 2 }
    }

    /// Fig 2(a): performance is "relatively insensitive to the choice of
    /// protocol, though MPI_SENDRECV is slower ... for certain halo
    /// sizes".
    #[test]
    fn sendrecv_never_faster_and_sometimes_slower() {
        let grid = Grid2D::new(16, 8); // 128 ranks keeps the test quick
        let m = bluegene_p();
        let mut sendrecv_penalty = 0usize;
        for words in [16u64, 512, 8192, 65536] {
            let t_ii = halo_run(&m, ExecMode::Vn, Mapping::txyz(), &cfg(grid, words, HaloProtocol::IrecvIsend));
            let t_sr = halo_run(&m, ExecMode::Vn, Mapping::txyz(), &cfg(grid, words, HaloProtocol::Sendrecv));
            assert!(t_sr > t_ii * 0.95, "words={words}: sendrecv {t_sr} vs {t_ii}");
            if t_sr > t_ii * 1.07 {
                sendrecv_penalty += 1;
            }
        }
        assert!(sendrecv_penalty >= 2, "sendrecv should lag for some sizes");
    }

    /// Fig 2(c,d): mapping choice is unimportant for small halos,
    /// important for large ones.
    #[test]
    fn mapping_matters_only_when_bandwidth_bound() {
        let grid = Grid2D::new(32, 32); // 1024 ranks
        let m = bluegene_p();
        let spread = |words: u64| {
            let times: Vec<f64> = Mapping::fig2_set()
                .iter()
                .map(|(_, map)| {
                    halo_run(&m, ExecMode::Vn, *map, &cfg(grid, words, HaloProtocol::IrecvIsend))
                })
                .collect();
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = times.iter().cloned().fold(0.0, f64::max);
            max / min
        };
        let small = spread(8);
        let large = spread(32_768);
        assert!(small < 1.35, "small-halo mapping spread {small:.2}");
        assert!(large > small, "large {large:.2} should exceed small {small:.2}");
        assert!(large > 1.25, "large-halo mapping spread {large:.2}");
    }

    /// Fig 2(e,f): cost does not grow with the processor-grid size —
    /// "good scalability for the halo operator".
    #[test]
    fn grid_size_does_not_blow_up_cost() {
        let m = bluegene_p();
        let t_small = halo_run(&m, ExecMode::Vn, Mapping::txyz(), &cfg(Grid2D::new(8, 8), 2048, HaloProtocol::IrecvIsend));
        let t_big = halo_run(&m, ExecMode::Vn, Mapping::txyz(), &cfg(Grid2D::new(32, 16), 2048, HaloProtocol::IrecvIsend));
        assert!(
            t_big < t_small * 2.5,
            "64 -> 512 ranks grew cost {t_small:.2e} -> {t_big:.2e}"
        );
    }

    /// Phase pressure: registers and fully releases, reports sane peaks,
    /// and a bandwidth-hostile mapping shows at least the pressure of a
    /// torus-friendly one on a big grid.
    #[test]
    fn phase_pressure_tracks_mapping_quality() {
        let m = bluegene_p();
        let grid = Grid2D::new(32, 32);
        let good = halo_phase_pressure(&m, ExecMode::Vn, Mapping::txyz(), grid);
        assert!(good[0] >= 1 && good[1] >= 1, "{good:?}");
        let spreads: Vec<[u32; 2]> = Mapping::fig2_set()
            .iter()
            .map(|(_, map)| halo_phase_pressure(&m, ExecMode::Vn, *map, grid))
            .collect();
        let worst = spreads.iter().map(|p| p[0].max(p[1])).max().unwrap();
        let best = spreads.iter().map(|p| p[0].max(p[1])).min().unwrap();
        assert!(worst >= best, "mapping set should span pressure levels: {spreads:?}");
        // determinism
        assert_eq!(good, halo_phase_pressure(&m, ExecMode::Vn, Mapping::txyz(), grid));
    }

    /// A survivable fault plan makes the exchange slower, never faster,
    /// and a run with no armed plan is unaffected by the feature.
    #[test]
    fn faulty_halo_is_no_faster_than_pristine() {
        use hpcsim_faults::{FaultPlan, FaultProfile};
        let m = bluegene_p();
        let grid = Grid2D::new(16, 8);
        let c = cfg(grid, 8192, HaloProtocol::IrecvIsend);
        let pristine = halo_run(&m, ExecMode::Vn, Mapping::txyz(), &c);
        let plan = FaultPlan::new(5, FaultProfile::Mixed);
        match halo_run_faulty(&m, ExecMode::Vn, Mapping::txyz(), &c, &plan) {
            Ok(faulty) => assert!(
                faulty >= pristine * 0.999,
                "faults sped up the halo: {faulty:.3e} < {pristine:.3e}"
            ),
            Err(e) => panic!("mixed plan at this scale should survive: {e}"),
        }
        // reproducible
        assert_eq!(
            halo_run_faulty(&m, ExecMode::Vn, Mapping::txyz(), &c, &plan).unwrap(),
            halo_run_faulty(&m, ExecMode::Vn, Mapping::txyz(), &c, &plan).unwrap(),
        );
    }

    /// The DAG sweep engine agrees with replay bit-for-bit across the
    /// Fig 2 mapping set: exactly on a contention-flat machine (where
    /// the DAG path is live), and trivially on the real contended BG/P
    /// (where it falls back to replay).
    #[test]
    fn dag_engine_matches_replay_across_mappings() {
        let grid = Grid2D::new(16, 8);
        let mappings: Vec<Mapping> = Mapping::fig2_set().iter().map(|(_, m)| *m).collect();
        for words in [8u64, 2048, 32_768] {
            let c = cfg(grid, words, HaloProtocol::IrecvIsend);
            for m in [bluegene_p().with_flat_contention(), bluegene_p()] {
                let replay =
                    halo_run_mapped_with(&m, ExecMode::Vn, &mappings, &c, SweepEngine::Replay);
                let dag = halo_run_mapped_with(&m, ExecMode::Vn, &mappings, &c, SweepEngine::Dag);
                assert_eq!(replay, dag, "words={words} flat={}", m.contention_flat());
            }
        }
    }

    /// The halo cost grows monotonically-ish with halo width.
    #[test]
    fn cost_grows_with_words() {
        let m = bluegene_p();
        let grid = Grid2D::new(8, 8);
        let t1 = halo_run(&m, ExecMode::Vn, Mapping::txyz(), &cfg(grid, 8, HaloProtocol::IrecvIsend));
        let t2 = halo_run(&m, ExecMode::Vn, Mapping::txyz(), &cfg(grid, 32_768, HaloProtocol::IrecvIsend));
        assert!(t2 > t1 * 3.0, "{t1:.2e} -> {t2:.2e}");
        assert!(t1 * 1e6 > 1.0, "even tiny halos cost > 1 us: {:.2}", t1 * 1e6);
    }
}
