//! Intel MPI Benchmark: Allreduce and Bcast sweeps (Figure 3).
//!
//! The IMB convention: run the operation `reps` times back-to-back and
//! report mean latency. We sweep message size at fixed process count
//! (Fig 3a/c) and process count at fixed 32 KiB payload (Fig 3b/d), with
//! the single- vs double-precision Allreduce distinction from §II.B.2.

use hpcsim_machine::{ExecMode, MachineSpec};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, TraceSim};
use hpcsim_net::DType;
use serde::Serialize;

/// One measured point of an IMB sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ImbPoint {
    /// Ranks participating.
    pub ranks: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Mean operation latency, microseconds.
    pub usec: f64,
}

fn run_coll(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    reps: u32,
    record: impl Fn(&mut Mpi) + Sync,
) -> f64 {
    let mut sim = TraceSim::new(SimConfig::new(machine.clone(), ranks, mode));
    let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
        for _ in 0..reps {
            record(mpi);
        }
    }));
    res.makespan().as_secs() / reps as f64 * 1e6
}

/// IMB Allreduce latency at one (ranks, bytes) point.
pub fn imb_allreduce(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    bytes: u64,
    dtype: DType,
) -> ImbPoint {
    let usec = run_coll(machine, mode, ranks, 4, move |mpi| {
        mpi.allreduce(CommId::WORLD, bytes, dtype);
    });
    ImbPoint { ranks, bytes, usec }
}

/// IMB Bcast latency at one (ranks, bytes) point.
pub fn imb_bcast(machine: &MachineSpec, mode: ExecMode, ranks: usize, bytes: u64) -> ImbPoint {
    let usec = run_coll(machine, mode, ranks, 4, move |mpi| {
        mpi.bcast(CommId::WORLD, bytes);
    });
    ImbPoint { ranks, bytes, usec }
}

fn run_coll_probe<T: hpcsim_probe::Tracer>(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    reps: u32,
    tracer: &mut T,
    record: impl Fn(&mut Mpi) + Sync,
) -> (f64, hpcsim_mpi::SimResult) {
    let mut sim = TraceSim::new(SimConfig::new(machine.clone(), ranks, mode));
    let res = sim.run_probe(
        &FnProgram(move |mpi: &mut Mpi| {
            for _ in 0..reps {
                record(mpi);
            }
        }),
        tracer,
    );
    (res.makespan().as_secs() / reps as f64 * 1e6, res)
}

/// [`imb_allreduce`] with an observability sink; also returns the raw
/// replay result for the probe layer.
pub fn imb_allreduce_probe<T: hpcsim_probe::Tracer>(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    bytes: u64,
    dtype: DType,
    tracer: &mut T,
) -> (ImbPoint, hpcsim_mpi::SimResult) {
    let (usec, res) = run_coll_probe(machine, mode, ranks, 4, tracer, move |mpi| {
        mpi.allreduce(CommId::WORLD, bytes, dtype);
    });
    (ImbPoint { ranks, bytes, usec }, res)
}

/// [`imb_bcast`] with an observability sink; also returns the raw
/// replay result for the probe layer.
pub fn imb_bcast_probe<T: hpcsim_probe::Tracer>(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    bytes: u64,
    tracer: &mut T,
) -> (ImbPoint, hpcsim_mpi::SimResult) {
    let (usec, res) = run_coll_probe(machine, mode, ranks, 4, tracer, move |mpi| {
        mpi.bcast(CommId::WORLD, bytes);
    });
    (ImbPoint { ranks, bytes, usec }, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};

    /// Fig 3(c): BG/P "dramatically outperforms the Cray XT for all
    /// message sizes" on Bcast.
    #[test]
    fn bcast_bgp_dominates_all_sizes() {
        for bytes in [8u64, 1024, 32 * 1024, 1 << 20] {
            let b = imb_bcast(&bluegene_p(), ExecMode::Vn, 512, bytes);
            let x = imb_bcast(&xt4_qc(), ExecMode::Vn, 512, bytes);
            assert!(
                b.usec < x.usec,
                "bytes={bytes}: BG/P {:.1}us vs XT {:.1}us",
                b.usec,
                x.usec
            );
        }
    }

    /// Fig 3(a): at 32 KiB the BG/P double-precision Allreduce beats the
    /// XT; its single-precision variant does not enjoy the tree.
    #[test]
    fn allreduce_precision_story() {
        let ranks = 512;
        let bytes = 32 * 1024;
        let b_dp = imb_allreduce(&bluegene_p(), ExecMode::Vn, ranks, bytes, DType::F64);
        let b_sp = imb_allreduce(&bluegene_p(), ExecMode::Vn, ranks, bytes, DType::F32);
        let x_dp = imb_allreduce(&xt4_qc(), ExecMode::Vn, ranks, bytes, DType::F64);
        assert!(b_dp.usec < x_dp.usec, "DP: BG/P {:.1} vs XT {:.1}", b_dp.usec, x_dp.usec);
        assert!(b_sp.usec > 2.0 * b_dp.usec, "SP {:.1} vs DP {:.1}", b_sp.usec, b_dp.usec);
    }

    /// Fig 3(b,d): latency grows slowly with process count on BG/P.
    #[test]
    fn scaling_in_process_count() {
        let bytes = 32 * 1024;
        let small = imb_allreduce(&bluegene_p(), ExecMode::Vn, 64, bytes, DType::F64);
        let large = imb_allreduce(&bluegene_p(), ExecMode::Vn, 2048, bytes, DType::F64);
        assert!(large.usec < small.usec * 1.8, "{} -> {}", small.usec, large.usec);
    }

    /// Latency grows with message size for both operations.
    #[test]
    fn monotone_in_bytes() {
        let a = imb_bcast(&bluegene_p(), ExecMode::Vn, 128, 8);
        let b = imb_bcast(&bluegene_p(), ExecMode::Vn, 128, 1 << 20);
        assert!(b.usec > a.usec * 10.0);
    }
}
