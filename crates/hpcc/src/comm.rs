//! HPCC communication probes: ping-pong and the random-ring tests.
//!
//! Table 2's communication rows. The random-ring test is the harsh one:
//! every rank exchanges with ring neighbours under a random permutation,
//! so messages take long, contended routes — near-neighbour hardware
//! can't help. The paper reads these as "the BG/P network's strength is
//! low-latency communication whereas the XT's strength is high-bandwidth
//! communication".

use hpcsim_engine::DetRng;
use hpcsim_machine::{ExecMode, MachineSpec};
use hpcsim_mpi::{FnProgram, Mpi, SimConfig, TraceSim};
use serde::Serialize;
use std::sync::Arc;

/// Ping-pong between ranks 0 and 1: returns (one-way latency seconds,
/// bandwidth bytes/s) measured with `small` and `large` payloads.
pub fn pingpong(machine: &MachineSpec, small: u64, large: u64) -> (f64, f64) {
    let run = |bytes: u64, reps: u32| {
        let mut sim = TraceSim::new(SimConfig::new(machine.clone(), 2, ExecMode::Smp));
        let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
            for i in 0..reps {
                if mpi.rank() == 0 {
                    mpi.send(1, i, bytes);
                    mpi.recv(1, 1000 + i, bytes);
                } else {
                    mpi.recv(0, i, bytes);
                    mpi.send(0, 1000 + i, bytes);
                }
            }
        }));
        res.makespan().as_secs() / reps as f64 / 2.0 // one-way
    };
    let latency = run(small, 8);
    let t_large = run(large, 4);
    (latency, large as f64 / t_large)
}

/// Result of a ring test.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RingResult {
    /// Mean one-way small-message latency, seconds.
    pub latency_s: f64,
    /// Per-rank large-message bandwidth, bytes/s.
    pub bandwidth: f64,
}

/// HPCC random-ring: ranks permuted randomly, each exchanges with its
/// ring neighbours (`small`-byte messages for latency, `large` for
/// bandwidth).
pub fn random_ring(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    small: u64,
    large: u64,
    seed: u64,
) -> RingResult {
    // one shared random permutation
    let mut perm: Vec<usize> = (0..ranks).collect();
    let mut rng = DetRng::new(seed, 0x52494E47); // "RING"
    for i in (1..ranks).rev() {
        let j = rng.next_below((i + 1) as u64) as usize;
        perm.swap(i, j);
    }
    let mut pos_of = vec![0usize; ranks];
    for (pos, &r) in perm.iter().enumerate() {
        pos_of[r] = pos;
    }
    let perm = Arc::new(perm);
    let pos_of = Arc::new(pos_of);

    let run = |bytes: u64| {
        let perm = Arc::clone(&perm);
        let pos_of = Arc::clone(&pos_of);
        let mut sim = TraceSim::new(SimConfig::new(machine.clone(), ranks, mode));
        let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
            let n = mpi.size();
            let pos = pos_of[mpi.rank()];
            let next = perm[(pos + 1) % n];
            let prev = perm[(pos + n - 1) % n];
            mpi.sendrecv(next, 7, bytes, prev, 7, bytes);
            mpi.sendrecv(prev, 8, bytes, next, 8, bytes);
        }));
        res.makespan().as_secs() / 2.0 // two exchanges
    };
    let latency_s = run(small);
    let t_large = run(large);
    RingResult { latency_s, bandwidth: large as f64 / t_large }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};

    /// Table 2: BG/P strength = latency; XT strength = bandwidth.
    #[test]
    fn latency_vs_bandwidth_split() {
        let (lat_b, bw_b) = pingpong(&bluegene_p(), 8, 1 << 21);
        let (lat_x, bw_x) = pingpong(&xt4_qc(), 8, 1 << 21);
        assert!(lat_b < lat_x, "latency: BG/P {lat_b:.2e} vs XT {lat_x:.2e}");
        assert!(bw_x > bw_b, "bandwidth: XT {bw_x:.3e} vs BG/P {bw_b:.3e}");
        // plausible magnitudes: microseconds and hundreds of MB/s – GB/s
        assert!(lat_b > 0.5e-6 && lat_b < 10e-6);
        assert!(bw_b > 200e6 && bw_b < 500e6);
        assert!(bw_x > 1e9);
    }

    /// Random-ring latency grows with scale (longer average routes) and
    /// stays lower on BG/P.
    #[test]
    fn random_ring_latency_ordering() {
        let b = random_ring(&bluegene_p(), ExecMode::Vn, 512, 8, 1 << 20, 1);
        let x = random_ring(&xt4_qc(), ExecMode::Vn, 512, 8, 1 << 20, 1);
        assert!(b.latency_s < x.latency_s);
        assert!(x.bandwidth > b.bandwidth);
    }

    #[test]
    fn random_ring_deterministic_per_seed() {
        let a = random_ring(&bluegene_p(), ExecMode::Vn, 128, 8, 1 << 18, 5);
        let b = random_ring(&bluegene_p(), ExecMode::Vn, 128, 8, 1 << 18, 5);
        assert_eq!(a.latency_s, b.latency_s);
        assert_eq!(a.bandwidth, b.bandwidth);
    }
}
