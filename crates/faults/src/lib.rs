//! # hpcsim-faults
//!
//! Deterministic fault injection for the BG/P reproduction study.
//!
//! A [`FaultPlan`] is derived from a single `u64` seed through the
//! engine's splittable RNG streams, so the same seed produces the same
//! faults regardless of `--jobs` count or scenario execution order. A
//! plan can contribute three ingredients, gated by [`FaultProfile`]:
//!
//! * [`LinkFaults`] — a per-link health map (dead links the router must
//!   detour around, degraded links whose bandwidth is derated). It
//!   implements `hpcsim_topo::LinkHealth` so the fault-aware router and
//!   the contention engine consume it directly.
//! * [`NoiseModel`] — multiplicative OS-noise jitter applied to compute
//!   spans, with the BG/P-vs-XT4 asymmetry the paper leans on: CNK is a
//!   near-silent microkernel while the XT4's Linux kernel interrupts
//!   computation orders of magnitude more.
//! * [`LossModel`] — per-message loss bursts that force bounded
//!   retransmits in the p2p model; a burst longer than the retransmit
//!   budget becomes a diagnosed stall instead of a wedged event queue.
//!
//! Noise and loss draws are *stateless* hashes of `(rank, step)` /
//! `(rank, seq)` — no shared RNG is advanced at simulation time, so the
//! schedule is identical under any thread interleaving.

use hpcsim_engine::rng::{split_seed, splitmix64, DetRng};
use hpcsim_topo::{LinkHealth, LinkId};

/// Which ingredients of the plan are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// Link outage + bandwidth degradation only.
    Link,
    /// OS-noise compute jitter only.
    Noise,
    /// Message loss / retransmit only.
    Loss,
    /// All three at once.
    Mixed,
}

impl FaultProfile {
    /// All profiles, in CLI/report order.
    pub fn all() -> [FaultProfile; 4] {
        [FaultProfile::Link, FaultProfile::Noise, FaultProfile::Loss, FaultProfile::Mixed]
    }

    /// Stable lowercase name used by `--fault-profile` and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultProfile::Link => "link",
            FaultProfile::Noise => "noise",
            FaultProfile::Loss => "loss",
            FaultProfile::Mixed => "mixed",
        }
    }

    /// Parse a CLI spelling. Returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<FaultProfile> {
        FaultProfile::all().into_iter().find(|p| p.label() == s)
    }

    /// One step up the severity ladder: every single-ingredient profile
    /// escalates to [`FaultProfile::Mixed`], which is already the top.
    pub fn escalated(&self) -> FaultProfile {
        FaultProfile::Mixed
    }
}

// Sub-stream indices; fixed so the schedule never shifts when one
// ingredient is disabled by the profile.
const STREAM_LINK: u64 = 0x11;
const STREAM_NOISE: u64 = 0x22;
const STREAM_LOSS: u64 = 0x33;

/// OS-noise amplitude for BG/P's compute-node kernel (near-silent).
pub const BGP_NOISE_AMP: f64 = 0.008;
/// OS-noise amplitude for the XT4's full Linux kernel.
pub const XT4_NOISE_AMP: f64 = 0.08;

/// A seeded, deterministic fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
}

impl FaultPlan {
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        FaultPlan { seed, profile }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn profile(&self) -> FaultProfile {
        self.profile
    }

    /// Link health map for a torus with `links` links, or `None` when the
    /// profile has no link faults. Small tori are guaranteed at least one
    /// dead and one degraded link so faults stay observable in tests.
    pub fn link_faults(&self, links: usize) -> Option<LinkFaults> {
        match self.profile {
            FaultProfile::Link | FaultProfile::Mixed => LinkFaults::build(self.seed, links),
            _ => None,
        }
    }

    /// Compute-jitter model, or `None` when the profile has no noise.
    /// `bluegene` selects the CNK amplitude instead of the XT4 one.
    pub fn noise(&self, bluegene: bool) -> Option<NoiseModel> {
        match self.profile {
            FaultProfile::Noise | FaultProfile::Mixed => Some(NoiseModel {
                seed: split_seed(self.seed, STREAM_NOISE),
                amplitude: if bluegene { BGP_NOISE_AMP } else { XT4_NOISE_AMP },
            }),
            _ => None,
        }
    }

    /// The same schedule shape under a different seed.
    pub fn with_seed(&self, seed: u64) -> FaultPlan {
        FaultPlan { seed, profile: self.profile }
    }

    /// The same seed under a different profile.
    pub fn with_profile(&self, profile: FaultProfile) -> FaultPlan {
        FaultPlan { seed: self.seed, profile }
    }

    /// Escalate the profile one severity step (see
    /// [`FaultProfile::escalated`]); the seed is kept so the surviving
    /// ingredients draw the same faults they did before escalation.
    pub fn escalated(&self) -> FaultPlan {
        self.with_profile(self.profile.escalated())
    }

    /// Deterministic structure-aware mutation for fuzzing: `stream`
    /// selects (via a stateless hash) whether to reseed, rotate the
    /// profile, or escalate. The same `(plan, stream)` always yields the
    /// same mutant, so a fuzz corpus entry replays identically from its
    /// `(seed, iteration)` coordinates alone.
    pub fn mutated(&self, stream: u64) -> FaultPlan {
        let h = splitmix64(self.seed ^ splitmix64(stream));
        match h % 3 {
            0 => self.with_seed(split_seed(self.seed, stream)),
            1 => {
                let all = FaultProfile::all();
                let cur = all.iter().position(|p| *p == self.profile).unwrap_or(0);
                self.with_profile(all[(cur + 1 + (h / 3) as usize % (all.len() - 1)) % all.len()])
            }
            _ => self.escalated(),
        }
    }

    /// Message-loss model, or `None` when the profile has no loss.
    pub fn loss(&self) -> Option<LossModel> {
        match self.profile {
            FaultProfile::Loss | FaultProfile::Mixed => Some(LossModel {
                seed: split_seed(self.seed, STREAM_LOSS),
                p: 0.02,
                max_burst: 4,
            }),
            _ => None,
        }
    }
}

/// Per-link health: a handful of dead links plus a slightly larger set of
/// bandwidth-degraded ones, drawn once per plan from a dedicated stream.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Bandwidth factor per link: 1.0 healthy, in (0,1) degraded, 0.0 dead.
    factor: Vec<f64>,
}

impl LinkFaults {
    fn build(seed: u64, links: usize) -> Option<LinkFaults> {
        if links == 0 {
            return None;
        }
        let mut rng = DetRng::new(seed, STREAM_LINK);
        let mut factor = vec![1.0f64; links];
        // ~0.4% outage, ~2% degradation, floored at one each so the fault
        // path is exercised even on the tiny tori the tests use.
        let n_dead = (links / 256).max(1).min(links);
        let n_degraded = (links / 50).max(1).min(links.saturating_sub(n_dead));
        let mut placed = 0;
        while placed < n_dead {
            let l = rng.next_below(links as u64) as usize;
            if factor[l] == 1.0 {
                factor[l] = 0.0;
                placed += 1;
            }
        }
        placed = 0;
        while placed < n_degraded {
            let l = rng.next_below(links as u64) as usize;
            if factor[l] == 1.0 {
                // Uniform derate in [0.3, 0.9]: bad enough to matter,
                // never so bad it masquerades as an outage.
                factor[l] = 0.3 + 0.6 * rng.next_f64();
                placed += 1;
            }
        }
        Some(LinkFaults { factor })
    }

    pub fn links(&self) -> usize {
        self.factor.len()
    }

    pub fn n_dead(&self) -> usize {
        self.factor.iter().filter(|&&f| f == 0.0).count()
    }

    pub fn n_degraded(&self) -> usize {
        self.factor.iter().filter(|&&f| f > 0.0 && f < 1.0).count()
    }

    /// Ids of all dead links, for probe gauges and reports.
    pub fn dead_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.factor
            .iter()
            .enumerate()
            .filter(|(_, &f)| f == 0.0)
            .map(|(i, _)| LinkId(i))
    }
}

impl LinkHealth for LinkFaults {
    fn is_dead(&self, link: LinkId) -> bool {
        self.factor.get(link.0).copied() == Some(0.0)
    }

    fn bw_factor(&self, link: LinkId) -> f64 {
        match self.factor.get(link.0) {
            Some(&f) if f > 0.0 => f,
            _ => 1.0,
        }
    }
}

/// Stateless multiplicative jitter on compute spans.
///
/// `factor(rank, step)` hashes the identity of the compute span, so the
/// draw is the same no matter which worker thread replays the rank or in
/// what order scenarios run. Most steps see a small uniform slowdown of
/// up to `amplitude`; roughly one in 256 hits a "daemon wakeup" spike an
/// order of magnitude larger — the heavy tail that makes Linux noise
/// visible at scale while CNK stays quiet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    seed: u64,
    amplitude: f64,
}

impl NoiseModel {
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Multiplicative factor (>= 1.0) for compute span `step` of `rank`.
    pub fn factor(&self, rank: usize, step: u64) -> f64 {
        let h = splitmix64(
            self.seed ^ splitmix64(rank as u64) ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let spike = if h & 0xFF == 0 { 10.0 } else { 1.0 };
        1.0 + self.amplitude * u * spike
    }
}

/// Stateless per-message loss bursts.
///
/// `lost_attempts(rank, seq)` is the number of consecutive transmission
/// attempts of message `seq` from `rank` that are lost before one
/// succeeds, capped at `max_burst`. Each attempt is an independent
/// Bernoulli(p) draw hashed from the message identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    seed: u64,
    /// Per-attempt loss probability.
    pub p: f64,
    /// Longest loss burst the model will generate.
    pub max_burst: u32,
}

impl LossModel {
    /// A custom model (tests use `p` close to 1.0 to force stalls).
    pub fn with_rates(seed: u64, p: f64, max_burst: u32) -> LossModel {
        LossModel { seed: split_seed(seed, STREAM_LOSS), p, max_burst }
    }

    /// Lost attempts before message `seq` from `rank` gets through.
    pub fn lost_attempts(&self, rank: usize, seq: u64) -> u32 {
        let base = self.seed ^ splitmix64(rank as u64) ^ seq.rotate_left(17);
        let mut lost = 0u32;
        while lost < self.max_burst {
            let h = splitmix64(base.wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(lost as u64 + 1)));
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u >= self.p {
                break;
            }
            lost += 1;
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_labels_round_trip() {
        for p in FaultProfile::all() {
            assert_eq!(FaultProfile::parse(p.label()), Some(p));
        }
        assert_eq!(FaultProfile::parse("chaos"), None);
    }

    #[test]
    fn plans_are_reproducible() {
        let a = FaultPlan::new(77, FaultProfile::Mixed);
        let b = FaultPlan::new(77, FaultProfile::Mixed);
        assert_eq!(a.link_faults(3072), b.link_faults(3072));
        let (na, nb) = (a.noise(true).unwrap(), b.noise(true).unwrap());
        for rank in 0..8 {
            for step in 0..32 {
                assert_eq!(na.factor(rank, step), nb.factor(rank, step));
            }
        }
        let (la, lb) = (a.loss().unwrap(), b.loss().unwrap());
        for rank in 0..8 {
            for seq in 0..64 {
                assert_eq!(la.lost_attempts(rank, seq), lb.lost_attempts(rank, seq));
            }
        }
    }

    #[test]
    fn mutation_api_is_deterministic_and_moves() {
        let plan = FaultPlan::new(7, FaultProfile::Loss);
        assert_eq!(plan.with_seed(9).seed(), 9);
        assert_eq!(plan.with_seed(9).profile(), FaultProfile::Loss);
        assert_eq!(plan.with_profile(FaultProfile::Link).seed(), 7);
        assert_eq!(plan.escalated().profile(), FaultProfile::Mixed);
        assert_eq!(plan.escalated().seed(), 7);
        // same (plan, stream) → same mutant; some stream must change it
        for stream in 0..16u64 {
            assert_eq!(plan.mutated(stream), plan.mutated(stream));
        }
        assert!((0..16u64).any(|s| plan.mutated(s) != plan));
    }

    #[test]
    fn different_seeds_give_different_faults() {
        let a = FaultPlan::new(1, FaultProfile::Link).link_faults(3072).unwrap();
        let b = FaultPlan::new(2, FaultProfile::Link).link_faults(3072).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn profile_gates_ingredients() {
        let link = FaultPlan::new(5, FaultProfile::Link);
        assert!(link.link_faults(96).is_some());
        assert!(link.noise(true).is_none());
        assert!(link.loss().is_none());

        let noise = FaultPlan::new(5, FaultProfile::Noise);
        assert!(noise.link_faults(96).is_none());
        assert!(noise.noise(false).is_some());
        assert!(noise.loss().is_none());

        let loss = FaultPlan::new(5, FaultProfile::Loss);
        assert!(loss.link_faults(96).is_none());
        assert!(loss.noise(true).is_none());
        assert!(loss.loss().is_some());

        let mixed = FaultPlan::new(5, FaultProfile::Mixed);
        assert!(mixed.link_faults(96).is_some());
        assert!(mixed.noise(true).is_some());
        assert!(mixed.loss().is_some());
    }

    #[test]
    fn link_faults_hit_target_rates() {
        let f = FaultPlan::new(9, FaultProfile::Link).link_faults(3072).unwrap();
        assert_eq!(f.n_dead(), 3072 / 256);
        assert_eq!(f.n_degraded(), 3072 / 50);
        assert_eq!(f.dead_ids().count(), f.n_dead());
        for id in f.dead_ids() {
            assert!(f.is_dead(id));
        }
    }

    #[test]
    fn tiny_torus_still_gets_one_fault_of_each_kind() {
        // 2x2x1 torus: 4 nodes * 6 directions = 24 links.
        let f = FaultPlan::new(3, FaultProfile::Link).link_faults(24).unwrap();
        assert_eq!(f.n_dead(), 1);
        assert_eq!(f.n_degraded(), 1);
    }

    #[test]
    fn degraded_factors_stay_in_band() {
        let f = FaultPlan::new(11, FaultProfile::Link).link_faults(4096).unwrap();
        for l in 0..f.links() {
            let bw = f.bw_factor(LinkId(l));
            assert!(
                (0.3..=1.0).contains(&bw),
                "link {l} factor {bw} out of band"
            );
        }
    }

    #[test]
    fn noise_respects_machine_asymmetry() {
        let plan = FaultPlan::new(21, FaultProfile::Noise);
        let bgp = plan.noise(true).unwrap();
        let xt4 = plan.noise(false).unwrap();
        let mean = |m: &NoiseModel| {
            let mut s = 0.0;
            for rank in 0..16 {
                for step in 0..256 {
                    s += m.factor(rank, step) - 1.0;
                }
            }
            s / (16.0 * 256.0)
        };
        let (mb, mx) = (mean(&bgp), mean(&xt4));
        assert!(mx > 5.0 * mb, "XT4 noise ({mx}) should dwarf BG/P ({mb})");
        for rank in 0..16 {
            for step in 0..256 {
                assert!(bgp.factor(rank, step) >= 1.0);
            }
        }
    }

    #[test]
    fn loss_bursts_bounded_and_rare() {
        let l = FaultPlan::new(33, FaultProfile::Loss).loss().unwrap();
        let mut total = 0u64;
        let n = 10_000u64;
        for seq in 0..n {
            let lost = l.lost_attempts(2, seq);
            assert!(lost <= l.max_burst);
            total += lost as u64;
        }
        // E[lost] ≈ p/(1-p) ≈ 0.0204; allow generous slack.
        let mean = total as f64 / n as f64;
        assert!(mean > 0.005 && mean < 0.08, "mean burst {mean} implausible");
    }

    #[test]
    fn forced_loss_exhausts_any_budget() {
        let l = LossModel::with_rates(1, 1.0, 8);
        assert_eq!(l.lost_attempts(0, 0), 8);
    }
}
