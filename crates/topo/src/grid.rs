//! Virtual process grids.
//!
//! The benchmarks and applications in the study decompose their domains
//! over logical 2-D grids (HALO's "128 by 64 virtual processor grid", POP's
//! block distribution) or 3-D grids (S3D's domain decomposition). These
//! are *logical* structures — the mapping module decides where each rank
//! physically lands.

use serde::{Deserialize, Serialize};

/// A logical 2-D process grid with periodic neighbours, ranks row-major
/// (`rank = row * cols + col`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid2D {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Grid2D {
    /// A rows×cols grid. Both dimensions must be ≥ 1.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        Grid2D { rows, cols }
    }

    /// The most-square factorization of `p` ranks (rows ≤ cols).
    pub fn near_square(p: usize) -> Self {
        assert!(p >= 1);
        let mut rows = (p as f64).sqrt() as usize;
        while rows > 1 && !p.is_multiple_of(rows) {
            rows -= 1;
        }
        Grid2D { rows: rows.max(1), cols: p / rows.max(1) }
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// (row, col) of a rank.
    pub fn pos(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at (row, col).
    pub fn rank(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Northern neighbour (row − 1, periodic).
    pub fn north(&self, rank: usize) -> usize {
        let (r, c) = self.pos(rank);
        self.rank((r + self.rows - 1) % self.rows, c)
    }

    /// Southern neighbour (row + 1, periodic).
    pub fn south(&self, rank: usize) -> usize {
        let (r, c) = self.pos(rank);
        self.rank((r + 1) % self.rows, c)
    }

    /// Western neighbour (col − 1, periodic).
    pub fn west(&self, rank: usize) -> usize {
        let (r, c) = self.pos(rank);
        self.rank(r, (c + self.cols - 1) % self.cols)
    }

    /// Eastern neighbour (col + 1, periodic).
    pub fn east(&self, rank: usize) -> usize {
        let (r, c) = self.pos(rank);
        self.rank(r, (c + 1) % self.cols)
    }
}

/// A logical 3-D process grid with periodic neighbours, ranks x-fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid3D {
    /// Extents along the three axes.
    pub dims: [usize; 3],
}

impl Grid3D {
    /// A grid of the given extents (each ≥ 1).
    pub fn new(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d >= 1));
        Grid3D { dims }
    }

    /// The most-cubic factorization of `p` ranks.
    pub fn near_cube(p: usize) -> Self {
        Grid3D { dims: crate::partition::torus_dims(p) }
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Position of a rank (x-fastest).
    pub fn pos(&self, rank: usize) -> [usize; 3] {
        debug_assert!(rank < self.size());
        [
            rank % self.dims[0],
            (rank / self.dims[0]) % self.dims[1],
            rank / (self.dims[0] * self.dims[1]),
        ]
    }

    /// Rank at a position.
    pub fn rank(&self, p: [usize; 3]) -> usize {
        debug_assert!((0..3).all(|i| p[i] < self.dims[i]));
        p[0] + self.dims[0] * (p[1] + self.dims[1] * p[2])
    }

    /// Neighbour of `rank` offset ±1 along `axis` (periodic).
    pub fn neighbor(&self, rank: usize, axis: usize, positive: bool) -> usize {
        let mut p = self.pos(rank);
        let n = self.dims[axis];
        p[axis] = if positive { (p[axis] + 1) % n } else { (p[axis] + n - 1) % n };
        self.rank(p)
    }

    /// The six face neighbours of a rank (pairs along x, y, z).
    pub fn face_neighbors(&self, rank: usize) -> [usize; 6] {
        [
            self.neighbor(rank, 0, false),
            self.neighbor(rank, 0, true),
            self.neighbor(rank, 1, false),
            self.neighbor(rank, 1, true),
            self.neighbor(rank, 2, false),
            self.neighbor(rank, 2, true),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_rank_pos_roundtrip() {
        let g = Grid2D::new(4, 8);
        for rank in 0..g.size() {
            let (r, c) = g.pos(rank);
            assert_eq!(g.rank(r, c), rank);
        }
    }

    #[test]
    fn grid2d_neighbors_wrap() {
        let g = Grid2D::new(4, 8);
        assert_eq!(g.north(0), g.rank(3, 0));
        assert_eq!(g.west(0), g.rank(0, 7));
        assert_eq!(g.south(g.rank(3, 5)), g.rank(0, 5));
        assert_eq!(g.east(g.rank(2, 7)), g.rank(2, 0));
    }

    #[test]
    fn grid2d_neighbors_are_involutive() {
        let g = Grid2D::new(5, 7);
        for rank in 0..g.size() {
            assert_eq!(g.south(g.north(rank)), rank);
            assert_eq!(g.east(g.west(rank)), rank);
        }
    }

    #[test]
    fn near_square_factors() {
        assert_eq!(Grid2D::near_square(8192), Grid2D::new(64, 128)); // paper's HALO grid
        assert_eq!(Grid2D::near_square(4096), Grid2D::new(64, 64));
        assert_eq!(Grid2D::near_square(2048), Grid2D::new(32, 64));
        assert_eq!(Grid2D::near_square(7), Grid2D::new(1, 7));
        assert_eq!(Grid2D::near_square(1), Grid2D::new(1, 1));
    }

    #[test]
    fn grid3d_roundtrip_and_neighbors() {
        let g = Grid3D::new([4, 3, 2]);
        for rank in 0..g.size() {
            assert_eq!(g.rank(g.pos(rank)), rank);
            for axis in 0..3 {
                let fwd = g.neighbor(rank, axis, true);
                assert_eq!(g.neighbor(fwd, axis, false), rank);
            }
        }
    }

    #[test]
    fn grid3d_face_neighbors_distinct_on_large_grid() {
        let g = Grid3D::new([4, 4, 4]);
        let n = g.face_neighbors(21);
        let mut v = n.to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 6);
        assert!(!v.contains(&21));
    }

    #[test]
    fn near_cube_uses_partition_shapes() {
        assert_eq!(Grid3D::near_cube(512).dims, [8, 8, 8]);
        assert_eq!(Grid3D::near_cube(1000).dims, [10, 10, 10]);
    }
}
