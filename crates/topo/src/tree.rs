//! The global collective tree.
//!
//! BlueGene machines carry a dedicated one-to-all network, physically
//! separate from the torus, used for broadcasts, reductions and
//! compute-to-I/O-node traffic (§I.A). Each node has three tree links; a
//! partition's nodes form a spanning tree of arity ≤ 2 (one uplink, up to
//! two downlinks). What the performance model needs from the topology is
//! the tree's **depth** — the number of store-and-forward stages a
//! combine/broadcast wavefront crosses — and the per-node streaming
//! bandwidth, which comes from the machine spec.

use serde::{Deserialize, Serialize};

/// The collective tree spanning one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveTree {
    /// Number of participating nodes.
    pub nodes: usize,
    /// Fan-out of each tree node (2 on BlueGene: three links = one up +
    /// two down).
    pub arity: usize,
}

impl CollectiveTree {
    /// Tree over `nodes` nodes with the BlueGene arity of 2.
    pub fn bluegene(nodes: usize) -> Self {
        CollectiveTree { nodes: nodes.max(1), arity: 2 }
    }

    /// Tree with a custom arity (for model studies).
    pub fn with_arity(nodes: usize, arity: usize) -> Self {
        assert!(arity >= 1);
        CollectiveTree { nodes: nodes.max(1), arity }
    }

    /// Depth of a balanced `arity`-ary tree over the partition: the number
    /// of link hops from the deepest leaf to the root.
    pub fn depth(&self) -> usize {
        if self.nodes <= 1 {
            return 0;
        }
        let a = self.arity as f64;
        if self.arity == 1 {
            return self.nodes - 1;
        }
        // smallest d with (a^(d+1) - 1)/(a - 1) >= nodes
        let mut total = 1usize;
        let mut level = 1usize;
        let mut d = 0usize;
        while total < self.nodes {
            level = level.saturating_mul(self.arity);
            total = total.saturating_add(level);
            d += 1;
        }
        let _ = a;
        d
    }

    /// Hops crossed by a full reduce-then-broadcast (allreduce) wavefront:
    /// up to the root and back down.
    pub fn allreduce_hops(&self) -> usize {
        2 * self.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_of_small_trees() {
        assert_eq!(CollectiveTree::bluegene(1).depth(), 0);
        assert_eq!(CollectiveTree::bluegene(2).depth(), 1);
        assert_eq!(CollectiveTree::bluegene(3).depth(), 1);
        assert_eq!(CollectiveTree::bluegene(4).depth(), 2);
        assert_eq!(CollectiveTree::bluegene(7).depth(), 2);
        assert_eq!(CollectiveTree::bluegene(8).depth(), 3);
    }

    #[test]
    fn depth_grows_logarithmically() {
        // Eugene: 2048 nodes -> depth 11 for a binary tree
        assert_eq!(CollectiveTree::bluegene(2048).depth(), 11);
        assert_eq!(CollectiveTree::bluegene(2047).depth(), 10);
        // Intrepid-scale
        assert_eq!(CollectiveTree::bluegene(40960).depth(), 15);
    }

    #[test]
    fn higher_arity_is_shallower() {
        let bin = CollectiveTree::with_arity(1000, 2).depth();
        let quad = CollectiveTree::with_arity(1000, 4).depth();
        assert!(quad < bin);
    }

    #[test]
    fn unary_tree_is_a_chain() {
        assert_eq!(CollectiveTree::with_arity(5, 1).depth(), 4);
    }

    #[test]
    fn allreduce_crosses_twice() {
        let t = CollectiveTree::bluegene(2048);
        assert_eq!(t.allreduce_hops(), 22);
    }

    #[test]
    fn zero_nodes_clamped() {
        assert_eq!(CollectiveTree::bluegene(0).depth(), 0);
    }
}
