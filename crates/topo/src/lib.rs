//! # hpcsim-topo
//!
//! Interconnect topologies and process placement for the BG/P study:
//!
//! * [`torus`] — the 3-D torus: coordinates, wraparound distances,
//!   dimension-ordered routing as compact ring segments
//!   ([`torus::RouteSegs`], iterated arithmetically into the link ids
//!   that are the unit of contention accounting in `hpcsim-net`).
//! * [`partition`] — how a job of N nodes becomes a torus shape (BG/P
//!   partitions are compact blocks; the Cray XT allocator hands out
//!   whatever is free, which the paper blames for PTRANS variability —
//!   modelled by [`partition::Placement`]).
//! * [`mapping`] — the predefined BG/P rank-to-node orderings (XYZT, TXYZ,
//!   and friends from §I.A and Figure 2) as mixed-radix digit permutations.
//! * [`grid`] — virtual process grids (2-D for HALO/POP, 3-D for S3D) with
//!   periodic neighbours.
//! * [`tree`] — the global collective tree: spanning-tree depth over a
//!   partition, used by the BG/P hardware-collective model.

pub mod grid;
pub mod mapping;
pub mod partition;
pub mod torus;
pub mod tree;

pub use grid::{Grid2D, Grid3D};
pub use mapping::Mapping;
pub use partition::{alloc_torus_dims, torus_dims, Placement};
pub use torus::{
    AllHealthy, Coord, Direction, DetourSegs, LinkHealth, LinkId, RouteSegs, SegLinks, Torus3D,
};
pub use tree::CollectiveTree;
