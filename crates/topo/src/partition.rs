//! Job partitions and node placement.
//!
//! BlueGene partitions are electrically-isolated rectangular torus blocks:
//! a job of N nodes always gets a compact `a×b×c` sub-torus. The Cray XT
//! allocator instead hands out whatever nodes are free, so a job may be
//! scattered across the machine and share links with other jobs — the
//! paper's explanation for the XT's PTRANS variability ("the resource
//! allocation approach on the XT is more susceptible to fragmentation").
//!
//! [`torus_dims`] picks the partition shape for a node count;
//! [`Placement`] turns job-node indices into machine-node indices, either
//! compactly (BG/P) or with fragmentation (XT).

use crate::torus::Torus3D;
use hpcsim_engine::DetRng;
use serde::{Deserialize, Serialize};

/// Standard BG/P partition shapes for power-of-two node counts, per the
/// machines in the study (Eugene's 2048-node racks, Intrepid's rows).
const BGP_SHAPES: &[(usize, [usize; 3])] = &[
    (32, [4, 4, 2]),
    (64, [4, 4, 4]),
    (128, [8, 4, 4]),
    (256, [8, 8, 4]),
    (512, [8, 8, 8]),
    (1024, [8, 8, 16]),
    (2048, [8, 16, 16]),
    (4096, [16, 16, 16]),
    (8192, [16, 16, 32]),
    (16384, [16, 32, 32]),
    (32768, [32, 32, 32]),
    (40960, [32, 32, 40]),
];

/// Choose torus dimensions for a partition of `nodes` nodes.
///
/// Power-of-two sizes use the standard BlueGene shapes; other sizes get
/// the factorization `a·b·c = nodes` minimizing surface (most cubic).
/// Every positive count has at least the degenerate `n×1×1` factorization.
pub fn torus_dims(nodes: usize) -> [usize; 3] {
    assert!(nodes >= 1);
    if let Some(&(_, dims)) = BGP_SHAPES.iter().find(|&&(n, _)| n == nodes) {
        return dims;
    }
    let mut best = [nodes, 1, 1];
    let mut best_score = usize::MAX;
    let mut a = 1;
    while a * a * a <= nodes {
        if nodes.is_multiple_of(a) {
            let rest = nodes / a;
            let mut b = a;
            while b * b <= rest {
                if rest.is_multiple_of(b) {
                    let c = rest / b;
                    let score = a * b + b * c + a * c; // surface ~ comm cost
                    if score < best_score {
                        best_score = score;
                        best = [a, b, c];
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best.sort_unstable();
    best
}

/// Torus dimensions for a *physical allocation* of at least `nodes`
/// nodes. Unlike [`torus_dims`], which factorizes exactly (and degrades
/// to a line for primes), this pads the count upward — real allocators
/// hand out rectangular blocks, never a 1×1×1291 noodle. The result's
/// volume is in `[nodes, ~1.3·nodes]` with bounded aspect ratio.
pub fn alloc_torus_dims(nodes: usize) -> [usize; 3] {
    assert!(nodes >= 1);
    if let Some(&(_, dims)) = BGP_SHAPES.iter().find(|&&(n, _)| n == nodes) {
        return dims;
    }
    // Allocations are granular (node cards): scan multiples of 16 (plus
    // the exact count) up to 25% padding and keep the most compact shape.
    let step = if nodes < 16 { 1 } else { 16 };
    let mut best = [nodes, 1, 1];
    let mut best_score = usize::MAX;
    let mut candidate = nodes;
    while candidate <= nodes + nodes / 4 + 1 {
        let d = torus_dims(candidate);
        let score = d[0] * d[1] + d[1] * d[2] + d[0] * d[2];
        if score < best_score {
            best_score = score;
            best = d;
        }
        candidate = (candidate / step + 1) * step;
    }
    best
}

/// How a job's nodes are placed onto the machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Compact rectangular partition (BlueGene): job node *i* is machine
    /// node *i* of a dedicated sub-torus.
    Compact,
    /// Fragmented allocation (Cray XT): the job's nodes are drawn
    /// scattered from a region `spread` times larger than the job, so
    /// routes are longer and shared. `spread` ≥ 1; 1 degenerates to
    /// compact.
    Fragmented {
        /// How much bigger the drawn-from region is than the job.
        spread: f64,
        /// Seed for the placement lottery (deterministic per experiment).
        seed: u64,
    },
}

impl Placement {
    /// Materialize the placement of a `job_nodes`-node job. Returns the
    /// torus to route on and, for each job node index, its node index in
    /// that torus.
    pub fn place(&self, job_nodes: usize) -> (Torus3D, Vec<usize>) {
        match *self {
            Placement::Compact => {
                let t = Torus3D::new(alloc_torus_dims(job_nodes));
                (t, (0..job_nodes).collect())
            }
            Placement::Fragmented { spread, seed } => {
                let spread = spread.max(1.0);
                let region = ((job_nodes as f64 * spread).ceil() as usize).max(job_nodes);
                let t = Torus3D::new(alloc_torus_dims(region));
                // Reservoir-sample job_nodes distinct machine nodes, then
                // assign them to job indices in machine order — mirroring
                // an allocator that walks its free list.
                let mut rng = DetRng::new(seed, 0xA110C);
                let mut chosen: Vec<usize> = (0..job_nodes).collect();
                for i in job_nodes..region {
                    let j = rng.next_below((i + 1) as u64) as usize;
                    if j < job_nodes {
                        chosen[j] = i;
                    }
                }
                chosen.sort_unstable();
                (t, chosen)
            }
        }
    }

    /// Mean route length between distinct job nodes under this placement —
    /// a scalar summary used by the analytic network model.
    pub fn mean_hops(&self, job_nodes: usize) -> f64 {
        let (torus, nodes) = self.place(job_nodes);
        if job_nodes < 2 {
            return 0.0;
        }
        // Sample pairs deterministically rather than O(n²).
        let mut rng = DetRng::new(0xB15EC7, job_nodes as u64);
        let samples = 4096.min(job_nodes * (job_nodes - 1));
        let mut sum = 0usize;
        for _ in 0..samples {
            let a = nodes[rng.next_below(job_nodes as u64) as usize];
            let b = nodes[rng.next_below(job_nodes as u64) as usize];
            sum += torus.hops(torus.coord(a), torus.coord(b));
        }
        sum as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_shapes_hit_table() {
        assert_eq!(torus_dims(512), [8, 8, 8]);
        assert_eq!(torus_dims(2048), [8, 16, 16]); // Eugene
        assert_eq!(torus_dims(8192), [16, 16, 32]);
    }

    #[test]
    fn factorizations_multiply_back() {
        for n in [1, 2, 6, 36, 100, 96, 7, 97, 1000, 2400] {
            let d = torus_dims(n);
            assert_eq!(d[0] * d[1] * d[2], n, "dims {d:?} for {n}");
        }
    }

    #[test]
    fn prime_degenerates_to_line() {
        assert_eq!(torus_dims(97), [1, 1, 97]);
    }

    #[test]
    fn alloc_dims_pad_primes_into_blocks() {
        // a prime allocation must NOT become a 1x1xP noodle
        let d = alloc_torus_dims(1291);
        let volume = d[0] * d[1] * d[2];
        assert!((1291..=1291 + 1291 / 4 + 2).contains(&volume), "{d:?}");
        assert!(d[0] >= 4, "aspect still degenerate: {d:?}");
    }

    #[test]
    fn alloc_dims_keep_standard_shapes() {
        assert_eq!(alloc_torus_dims(2048), [8, 16, 16]);
        assert_eq!(alloc_torus_dims(512), [8, 8, 8]);
        assert_eq!(alloc_torus_dims(1), [1, 1, 1]);
    }

    #[test]
    fn near_cube_preferred() {
        let d = torus_dims(1000);
        assert_eq!(d, [10, 10, 10]);
        let d = torus_dims(96);
        // 4*4*6 surface = 16+24+24 = 64, better than 2*6*8 (12+48+16=76)
        assert_eq!(d, [4, 4, 6]);
    }

    #[test]
    fn compact_placement_is_identity() {
        let (t, nodes) = Placement::Compact.place(512);
        assert_eq!(t.nodes(), 512);
        assert_eq!(nodes, (0..512).collect::<Vec<_>>());
    }

    #[test]
    fn fragmented_placement_is_scattered_superset() {
        let p = Placement::Fragmented { spread: 2.0, seed: 7 };
        let (t, nodes) = p.place(256);
        assert!(t.nodes() >= 512);
        assert_eq!(nodes.len(), 256);
        let mut uniq = nodes.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 256, "placement must not duplicate nodes");
        assert!(*nodes.last().unwrap() < t.nodes());
        // not simply 0..256
        assert_ne!(nodes, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn fragmented_placement_is_deterministic() {
        let p = Placement::Fragmented { spread: 1.5, seed: 42 };
        assert_eq!(p.place(128).1, p.place(128).1);
        let q = Placement::Fragmented { spread: 1.5, seed: 43 };
        assert_ne!(p.place(128).1, q.place(128).1);
    }

    /// The paper's fragmentation story: scattered placement lengthens
    /// routes.
    #[test]
    fn fragmentation_increases_mean_hops() {
        let compact = Placement::Compact.mean_hops(512);
        let frag = Placement::Fragmented { spread: 2.0, seed: 3 }.mean_hops(512);
        assert!(
            frag > compact,
            "fragmented {frag:.2} should exceed compact {compact:.2}"
        );
    }

    #[test]
    fn mean_hops_degenerate_cases() {
        assert_eq!(Placement::Compact.mean_hops(1), 0.0);
        let p = Placement::Fragmented { spread: 1.0, seed: 0 };
        let (_, nodes) = p.place(64);
        assert_eq!(nodes, (0..64).collect::<Vec<_>>());
    }
}
