//! The 3-D torus: coordinates, distances, and dimension-ordered routes.
//!
//! Routes are materialized as sequences of [`LinkId`]s — one per traversed
//! unidirectional link — because link occupancy is the unit of contention
//! accounting in the network model. BG/P routes packets in dimension order
//! (X, then Y, then Z), taking the shorter way around each ring; ties
//! break toward the positive direction, matching the determinism of the
//! hardware's default routing.

use serde::{Deserialize, Serialize};

/// A node position in the torus.
pub type Coord = [usize; 3];

/// One of the six torus link directions out of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// +X neighbour.
    XPlus,
    /// −X neighbour.
    XMinus,
    /// +Y neighbour.
    YPlus,
    /// −Y neighbour.
    YMinus,
    /// +Z neighbour.
    ZPlus,
    /// −Z neighbour.
    ZMinus,
}

impl Direction {
    /// Dense index 0..6 (used for link-table addressing).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::XPlus => 0,
            Direction::XMinus => 1,
            Direction::YPlus => 2,
            Direction::YMinus => 3,
            Direction::ZPlus => 4,
            Direction::ZMinus => 5,
        }
    }

    /// Which dimension (0=X, 1=Y, 2=Z) this direction moves along.
    pub fn dim(self) -> usize {
        self.index() / 2
    }
}

/// A unidirectional link, identified by its source node and direction.
/// `id = node * 6 + direction` is a dense index into per-link tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Compose from source node index and direction.
    pub fn new(node: usize, dir: Direction) -> Self {
        LinkId(node * 6 + dir.index())
    }

    /// Source node index.
    #[inline]
    pub fn node(self) -> usize {
        self.0 / 6
    }

    /// Direction out of the source node.
    #[inline]
    pub fn direction_index(self) -> usize {
        self.0 % 6
    }
}

/// A 3-D torus of the given dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus3D {
    /// Ring sizes along X, Y, Z.
    pub dims: Coord,
}

impl Torus3D {
    /// A torus with dimensions `[x, y, z]`. All dimensions must be ≥ 1.
    pub fn new(dims: Coord) -> Self {
        assert!(dims.iter().all(|&d| d >= 1), "torus dims must be >= 1: {dims:?}");
        Torus3D { dims }
    }

    /// Total node count.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Total unidirectional link count (6 per node).
    pub fn links(&self) -> usize {
        self.nodes() * 6
    }

    /// Node index of a coordinate (X varies fastest).
    #[inline]
    pub fn index(&self, c: Coord) -> usize {
        debug_assert!(c[0] < self.dims[0] && c[1] < self.dims[1] && c[2] < self.dims[2]);
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// Coordinate of a node index.
    #[inline]
    pub fn coord(&self, idx: usize) -> Coord {
        debug_assert!(idx < self.nodes());
        let x = idx % self.dims[0];
        let y = (idx / self.dims[0]) % self.dims[1];
        let z = idx / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Signed shortest offset from `a` to `b` along ring dimension `dim`:
    /// positive means the +direction is (weakly) shorter. A ring of even
    /// size has an ambiguous antipode; we choose +.
    #[inline]
    fn ring_offset(&self, a: usize, b: usize, dim: usize) -> isize {
        let n = self.dims[dim] as isize;
        let mut d = (b as isize - a as isize).rem_euclid(n); // 0..n
        if d > n / 2 || (n % 2 == 0 && d == n / 2) {
            // going − is strictly shorter, except exactly-half where we keep +
            if d != n / 2 {
                d -= n;
            }
        }
        d
    }

    /// Hop distance between two nodes (sum of per-dimension shortest ring
    /// distances).
    #[inline]
    pub fn hops(&self, a: Coord, b: Coord) -> usize {
        (0..3)
            .map(|d| {
                let n = self.dims[d];
                let fwd = (b[d] + n - a[d]) % n;
                fwd.min(n - fwd)
            })
            .sum()
    }

    /// Average hop distance over all ordered node pairs — the analytic
    /// expectation `Σ_d avg_ring(n_d)`, where a ring of size n has mean
    /// shortest distance ≈ n/4.
    pub fn mean_hops(&self) -> f64 {
        self.dims
            .iter()
            .map(|&n| {
                let n = n as f64;
                // exact mean of min(k, n-k) over k=0..n-1:
                // floor(n/2)*ceil(n/2)/n
                if n <= 1.0 {
                    0.0
                } else {
                    ((n / 2.0).floor() * (n / 2.0).ceil()) / n
                }
            })
            .sum()
    }

    /// Compact dimension-ordered route from `a` to `b`: the three signed
    /// ring offsets, resolved with the same shorter-way/tie-positive rule
    /// as [`Torus3D::route`]. A stack value (`Copy`, no allocation);
    /// [`RouteSegs::links`] recovers the exact link sequence
    /// arithmetically.
    #[inline]
    pub fn route_segs(&self, a: Coord, b: Coord) -> RouteSegs {
        RouteSegs {
            start: a,
            offs: [
                self.ring_offset(a[0], b[0], 0) as i32,
                self.ring_offset(a[1], b[1], 1) as i32,
                self.ring_offset(a[2], b[2], 2) as i32,
            ],
        }
    }

    /// Dimension-ordered route from `a` to `b` as the sequence of
    /// unidirectional links traversed. Empty when `a == b`.
    ///
    /// Materializes one `LinkId` per hop; the contention hot path uses
    /// the allocation-free [`Torus3D::route_segs`] instead, and this
    /// remains as the independent oracle the property tests check the
    /// segment iterator against.
    pub fn route(&self, a: Coord, b: Coord) -> Vec<LinkId> {
        let mut links = Vec::with_capacity(self.hops(a, b));
        let mut cur = a;
        for dim in 0..3 {
            let off = self.ring_offset(cur[dim], b[dim], dim);
            let (dir, step): (Direction, isize) = match (dim, off >= 0) {
                (0, true) => (Direction::XPlus, 1),
                (0, false) => (Direction::XMinus, -1),
                (1, true) => (Direction::YPlus, 1),
                (1, false) => (Direction::YMinus, -1),
                (_, true) => (Direction::ZPlus, 1),
                (_, false) => (Direction::ZMinus, -1),
            };
            for _ in 0..off.unsigned_abs() {
                links.push(LinkId::new(self.index(cur), dir));
                let n = self.dims[dim] as isize;
                cur[dim] = ((cur[dim] as isize + step).rem_euclid(n)) as usize;
            }
        }
        debug_assert_eq!(cur, b, "route must terminate at destination");
        links
    }

    /// Number of unidirectional links crossing the bisection orthogonal to
    /// the longest dimension (the network's bandwidth choke point, which
    /// PTRANS and Alltoall stress).
    pub fn bisection_links(&self) -> usize {
        let longest = *self.dims.iter().max().unwrap();
        if longest <= 1 {
            // degenerate: no bisection; treat all links of a node as the cut
            return 6;
        }
        let cross_section: usize = self.nodes() / longest;
        // each ring crossing the cut contributes 2 links per direction
        // (wraparound), per cut plane, in one direction of traffic
        let wrap = if longest > 2 { 2 } else { 1 };
        cross_section * wrap
    }
}

/// Link-health oracle consulted by fault-aware routing. Implemented by
/// the fault-injection layer (`hpcsim-faults`); the all-healthy default
/// makes every fault-aware path collapse to the pristine one.
pub trait LinkHealth {
    /// True when `link` is down and must not carry traffic.
    fn is_dead(&self, link: LinkId) -> bool;

    /// Bandwidth derating for `link` in `(0, 1]` (1.0 = full speed).
    /// Only meaningful for live links.
    fn bw_factor(&self, link: LinkId) -> f64;
}

/// The trivial [`LinkHealth`]: every link up at full bandwidth.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllHealthy;

impl LinkHealth for AllHealthy {
    #[inline]
    fn is_dead(&self, _link: LinkId) -> bool {
        false
    }

    #[inline]
    fn bw_factor(&self, _link: LinkId) -> f64 {
        1.0
    }
}

/// A fault-aware route: one or two [`RouteSegs`] legs chained end to
/// end. One leg is the common case (the direct dimension-ordered route,
/// or a ring-direction flip around a dead link); two legs appear when
/// the route must dog-leg through an intermediate waypoint. Like
/// `RouteSegs` it is a fixed-size `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetourSegs {
    legs: [RouteSegs; 2],
    n: u8,
}

impl DetourSegs {
    fn single(leg: RouteSegs) -> Self {
        DetourSegs { legs: [leg, leg], n: 1 }
    }

    fn pair(a: RouteSegs, b: RouteSegs) -> Self {
        DetourSegs { legs: [a, b], n: 2 }
    }

    /// The route legs in traversal order.
    pub fn legs(&self) -> &[RouteSegs] {
        &self.legs[..self.n as usize]
    }

    /// Total hop count over all legs.
    pub fn hops(&self) -> usize {
        self.legs().iter().map(|l| l.hops()).sum()
    }

    /// True when this is the plain direct route (a single leg).
    pub fn is_direct(&self) -> bool {
        self.n == 1
    }

    /// Iterate every traversed link, leg by leg.
    pub fn links<'a>(&self, torus: &'a Torus3D) -> impl Iterator<Item = LinkId> + 'a {
        let legs: Vec<RouteSegs> = self.legs().to_vec();
        legs.into_iter().flat_map(move |l| l.links(torus))
    }

    /// Smallest bandwidth derating over the route's links (1.0 when the
    /// route is empty).
    pub fn min_bw_factor<H: LinkHealth>(&self, torus: &Torus3D, health: &H) -> f64 {
        let mut f = 1.0f64;
        for leg in self.legs() {
            for l in leg.links(torus) {
                f = f.min(health.bw_factor(l));
            }
        }
        f
    }
}

impl Torus3D {
    fn segs_clean<H: LinkHealth>(&self, segs: RouteSegs, health: &H) -> bool {
        segs.links(self).all(|l| !health.is_dead(l))
    }

    /// Dimension-ordered route from `a` to `b` that avoids dead links,
    /// or `None` when every candidate detour is blocked.
    ///
    /// The search is deterministic and bounded:
    ///
    /// 1. the direct route (identical to [`Torus3D::route_segs`]) if
    ///    clean — so on a fault-free torus this function *is* the legacy
    ///    router, which the property tests pin;
    /// 2. ring-direction flips: each nonzero dimension may go the long
    ///    way around its ring (≤ 8 sign combinations, in a fixed order);
    /// 3. single-waypoint dog-legs through each of the source's six
    ///    neighbours (two legs, each leg checked clean).
    pub fn route_segs_avoiding<H: LinkHealth>(
        &self,
        a: Coord,
        b: Coord,
        health: &H,
    ) -> Option<DetourSegs> {
        let direct = self.route_segs(a, b);
        if self.segs_clean(direct, health) {
            return Some(DetourSegs::single(direct));
        }
        // Ring-direction flips: offs[d] -> offs[d] - sign * n goes the
        // other way around ring d. mask bit d set = flip dimension d.
        for mask in 1u8..8 {
            let mut offs = direct.offs;
            let mut valid = true;
            for (d, off) in offs.iter_mut().enumerate() {
                if mask & (1 << d) == 0 {
                    continue;
                }
                let n = self.dims[d] as i32;
                if *off == 0 || n < 2 {
                    valid = false; // nothing to flip in this dimension
                    break;
                }
                *off -= off.signum() * n;
            }
            if !valid {
                continue;
            }
            let cand = RouteSegs { start: a, offs };
            if self.segs_clean(cand, health) {
                return Some(DetourSegs::single(cand));
            }
        }
        // Dog-leg through each neighbour of the source, in direction
        // order (deterministic).
        for dir_idx in 0..6usize {
            let dim = dir_idx / 2;
            let step: isize = if dir_idx % 2 == 0 { 1 } else { -1 };
            let n = self.dims[dim] as isize;
            if n < 2 {
                continue;
            }
            let mut w = a;
            w[dim] = ((a[dim] as isize + step).rem_euclid(n)) as usize;
            if w == a || w == b {
                continue;
            }
            let leg1 = self.route_segs(a, w);
            let leg2 = self.route_segs(w, b);
            if self.segs_clean(leg1, health) && self.segs_clean(leg2, health) {
                return Some(DetourSegs::pair(leg1, leg2));
            }
        }
        None
    }
}

/// A dimension-ordered torus route in compact form: the origin plus one
/// signed ring offset per dimension — at most three ring segments, never
/// more state than four words. Unlike [`Torus3D::route`], which
/// materializes a `Vec` with one entry per hop, this is a fixed-size
/// `Copy` value; the links it traverses are recovered arithmetically by
/// [`RouteSegs::links`], in exactly the order `route()` would list them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouteSegs {
    /// Route origin.
    pub start: Coord,
    /// Signed shortest ring offset per dimension (positive = the
    /// +direction, with even-ring antipode ties broken positive).
    pub offs: [i32; 3],
}

impl RouteSegs {
    /// Total hop count (equals `Torus3D::hops` of the endpoints).
    #[inline]
    pub fn hops(&self) -> usize {
        self.offs.iter().map(|o| o.unsigned_abs() as usize).sum()
    }

    /// True for a self-route (no links).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offs == [0, 0, 0]
    }

    /// The per-dimension segments as `(entry coordinate, signed length)`.
    /// Segment `d` begins where dimensions `< d` have already arrived at
    /// their destination values; zero-length segments are included.
    #[inline]
    pub fn segments(&self, torus: &Torus3D) -> [(Coord, i32); 3] {
        let mut cur = self.start;
        let mut out = [(cur, 0); 3];
        for d in 0..3 {
            out[d] = (cur, self.offs[d]);
            let n = torus.dims[d] as i32;
            cur[d] = (cur[d] as i32 + self.offs[d]).rem_euclid(n) as usize;
        }
        out
    }

    /// Iterate the traversed links without materializing them. Yields
    /// exactly the sequence `Torus3D::route` would return for the same
    /// endpoints, advancing node indices incrementally (one add and a
    /// wrap test per hop).
    #[inline]
    pub fn links(self, torus: &Torus3D) -> SegLinks {
        SegLinks {
            dims: torus.dims,
            cur: self.start,
            node: torus.index(self.start),
            offs: self.offs,
            dim: 0,
        }
    }
}

/// Iterator over the links of a [`RouteSegs`]; see [`RouteSegs::links`].
#[derive(Debug, Clone)]
pub struct SegLinks {
    dims: Coord,
    cur: Coord,
    node: usize,
    offs: [i32; 3],
    dim: usize,
}

impl Iterator for SegLinks {
    type Item = LinkId;

    #[inline]
    fn next(&mut self) -> Option<LinkId> {
        while self.dim < 3 && self.offs[self.dim] == 0 {
            self.dim += 1;
        }
        if self.dim >= 3 {
            return None;
        }
        let d = self.dim;
        let positive = self.offs[d] > 0;
        // direction index: 2*dim, +1 for the minus direction
        let dir = 2 * d + usize::from(!positive);
        let link = LinkId(self.node * 6 + dir);
        let n = self.dims[d];
        let stride = match d {
            0 => 1,
            1 => self.dims[0],
            _ => self.dims[0] * self.dims[1],
        };
        if positive {
            self.offs[d] -= 1;
            if self.cur[d] == n - 1 {
                self.cur[d] = 0;
                self.node -= stride * (n - 1);
            } else {
                self.cur[d] += 1;
                self.node += stride;
            }
        } else {
            self.offs[d] += 1;
            if self.cur[d] == 0 {
                self.cur[d] = n - 1;
                self.node += stride * (n - 1);
            } else {
                self.cur[d] -= 1;
                self.node -= stride;
            }
        }
        Some(link)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left: usize = self.offs.iter().map(|o| o.unsigned_abs() as usize).sum();
        (left, Some(left))
    }
}

impl ExactSizeIterator for SegLinks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coord_roundtrip() {
        let t = Torus3D::new([8, 16, 32]);
        for idx in [0, 1, 7, 8, 127, 128, 4095, t.nodes() - 1] {
            assert_eq!(t.index(t.coord(idx)), idx);
        }
    }

    #[test]
    fn hops_wraps_around() {
        let t = Torus3D::new([8, 8, 8]);
        assert_eq!(t.hops([0, 0, 0], [7, 0, 0]), 1); // wraparound
        assert_eq!(t.hops([0, 0, 0], [4, 0, 0]), 4); // antipode
        assert_eq!(t.hops([0, 0, 0], [3, 3, 3]), 9);
        assert_eq!(t.hops([5, 5, 5], [5, 5, 5]), 0);
    }

    #[test]
    fn route_length_equals_hops() {
        let t = Torus3D::new([4, 6, 8]);
        let pairs = [([0, 0, 0], [3, 5, 7]), ([1, 2, 3], [1, 2, 3]), ([0, 0, 0], [2, 3, 4])];
        for (a, b) in pairs {
            assert_eq!(t.route(a, b).len(), t.hops(a, b), "{a:?}->{b:?}");
        }
    }

    #[test]
    fn route_is_dimension_ordered() {
        let t = Torus3D::new([8, 8, 8]);
        let route = t.route([0, 0, 0], [2, 2, 0]);
        let dims: Vec<usize> =
            route.iter().map(|l| Direction::XPlus.dim().min(l.direction_index() / 2)).collect();
        // first two hops along X (dim 0), then two along Y (dim 1)
        let d: Vec<usize> = route.iter().map(|l| l.direction_index() / 2).collect();
        assert_eq!(d, vec![0, 0, 1, 1]);
        let _ = dims;
    }

    #[test]
    fn route_takes_short_way_around() {
        let t = Torus3D::new([8, 8, 8]);
        let route = t.route([0, 0, 0], [7, 0, 0]);
        assert_eq!(route.len(), 1);
        assert_eq!(route[0].direction_index(), Direction::XMinus.index());
    }

    #[test]
    fn antipode_tie_breaks_positive() {
        let t = Torus3D::new([8, 1, 1]);
        let route = t.route([0, 0, 0], [4, 0, 0]);
        assert_eq!(route.len(), 4);
        assert!(route.iter().all(|l| l.direction_index() == Direction::XPlus.index()));
    }

    #[test]
    fn route_endpoints_chain() {
        // each link's source node must be the previous link's destination
        let t = Torus3D::new([5, 7, 3]);
        let a = [4, 6, 2];
        let b = [1, 0, 1];
        let route = t.route(a, b);
        let mut prev = t.index(a);
        for l in &route {
            assert_eq!(l.node(), prev, "chain break");
            // advance prev along l
            let c = t.coord(prev);
            let dim = l.direction_index() / 2;
            let n = t.dims[dim] as isize;
            let step = if l.direction_index() % 2 == 0 { 1 } else { -1 };
            let mut c2 = c;
            c2[dim] = ((c[dim] as isize + step).rem_euclid(n)) as usize;
            prev = t.index(c2);
        }
        assert_eq!(prev, t.index(b));
    }

    #[test]
    fn link_id_roundtrip() {
        let l = LinkId::new(123, Direction::ZMinus);
        assert_eq!(l.node(), 123);
        assert_eq!(l.direction_index(), 5);
    }

    #[test]
    fn mean_hops_closed_form() {
        // ring of 8: mean shortest distance = floor(4)*ceil(4)/8 = 2
        let t = Torus3D::new([8, 8, 8]);
        assert!((t.mean_hops() - 6.0).abs() < 1e-12);
        // brute-force check on a small torus
        let t = Torus3D::new([4, 3, 2]);
        let mut sum = 0usize;
        let n = t.nodes();
        for i in 0..n {
            for j in 0..n {
                sum += t.hops(t.coord(i), t.coord(j));
            }
        }
        let brute = sum as f64 / (n * n) as f64;
        assert!((t.mean_hops() - brute).abs() < 1e-9, "model {} vs brute {brute}", t.mean_hops());
    }

    #[test]
    fn bisection_links_cube() {
        // 8x8x8: cut orthogonal to X: 64 node columns, wraparound -> 128
        let t = Torus3D::new([8, 8, 8]);
        assert_eq!(t.bisection_links(), 128);
    }

    #[test]
    #[should_panic(expected = "dims must be")]
    fn zero_dim_rejected() {
        let _ = Torus3D::new([0, 4, 4]);
    }

    #[test]
    fn route_segs_matches_route_exhaustively() {
        // Even rings (antipode ties), odd rings, and a size-1 ring, over
        // every ordered node pair.
        for dims in [[4, 3, 1], [2, 2, 2], [5, 4, 3]] {
            let t = Torus3D::new(dims);
            for a in 0..t.nodes() {
                for b in 0..t.nodes() {
                    let (ca, cb) = (t.coord(a), t.coord(b));
                    let segs = t.route_segs(ca, cb);
                    assert_eq!(segs.hops(), t.hops(ca, cb), "{ca:?}->{cb:?}");
                    let iterated: Vec<LinkId> = segs.links(&t).collect();
                    assert_eq!(iterated, t.route(ca, cb), "{ca:?}->{cb:?} in {dims:?}");
                }
            }
        }
    }

    #[test]
    fn route_segs_is_stack_value() {
        let t = Torus3D::new([8, 8, 8]);
        let segs = t.route_segs([0, 0, 0], [4, 7, 1]);
        let copy = segs; // Copy, no move
        assert_eq!(segs, copy);
        assert_eq!(segs.offs, [4, -1, 1]);
        assert!(!segs.is_empty());
        assert!(t.route_segs([1, 2, 3], [1, 2, 3]).is_empty());
    }

    /// Deterministic link-health stub for detour tests.
    struct DeadSet(Vec<LinkId>);

    impl LinkHealth for DeadSet {
        fn is_dead(&self, link: LinkId) -> bool {
            self.0.contains(&link)
        }

        fn bw_factor(&self, _link: LinkId) -> f64 {
            1.0
        }
    }

    #[test]
    fn detour_on_healthy_torus_is_the_direct_route() {
        for dims in [[4, 3, 1], [2, 2, 2], [5, 4, 3]] {
            let t = Torus3D::new(dims);
            for a in 0..t.nodes() {
                for b in 0..t.nodes() {
                    let (ca, cb) = (t.coord(a), t.coord(b));
                    let d = t.route_segs_avoiding(ca, cb, &AllHealthy).expect("healthy route");
                    assert!(d.is_direct(), "{ca:?}->{cb:?}");
                    assert_eq!(d.legs()[0], t.route_segs(ca, cb));
                    assert_eq!(d.hops(), t.hops(ca, cb));
                }
            }
        }
    }

    #[test]
    fn detour_avoids_a_dead_link() {
        let t = Torus3D::new([4, 4, 4]);
        let a = [0, 0, 0];
        let b = [2, 0, 0];
        // kill the first link of the direct route
        let dead = DeadSet(t.route(a, b)[..1].to_vec());
        let d = t.route_segs_avoiding(a, b, &dead).expect("detour must exist");
        for l in d.links(&t) {
            assert!(!dead.is_dead(l), "detour uses dead link {l:?}");
        }
        // detours are longer than (or equal to) the shortest path
        assert!(d.hops() >= t.hops(a, b));
        // the route still chains from a to b: check endpoint of last leg
        let last = d.legs().last().unwrap();
        let parts = last.segments(&t);
        let mut end = parts[2].0;
        let n = t.dims[2] as i32;
        end[2] = (end[2] as i32 + parts[2].1).rem_euclid(n) as usize;
        assert_eq!(end, b);
    }

    #[test]
    fn detour_falls_back_to_dog_leg() {
        let t = Torus3D::new([4, 4, 1]);
        let a = [0, 0, 0];
        let b = [2, 0, 0];
        // kill both X directions out of the source so every ring-flip
        // candidate in X is blocked; the route must leave through Y
        let dead = DeadSet(vec![
            LinkId::new(t.index(a), Direction::XPlus),
            LinkId::new(t.index(a), Direction::XMinus),
        ]);
        let d = t.route_segs_avoiding(a, b, &dead).expect("dog-leg must exist");
        assert!(!d.is_direct());
        for l in d.links(&t) {
            assert!(!dead.is_dead(l));
        }
    }

    #[test]
    fn fully_blocked_source_has_no_route() {
        let t = Torus3D::new([3, 3, 3]);
        let a = [0, 0, 0];
        let dead = DeadSet((0..6).map(|dir| LinkId(t.index(a) * 6 + dir)).collect());
        assert!(t.route_segs_avoiding(a, [1, 1, 1], &dead).is_none());
    }

    #[test]
    fn min_bw_factor_takes_the_worst_link() {
        struct Slow(LinkId);
        impl LinkHealth for Slow {
            fn is_dead(&self, _l: LinkId) -> bool {
                false
            }
            fn bw_factor(&self, l: LinkId) -> f64 {
                if l == self.0 {
                    0.25
                } else {
                    1.0
                }
            }
        }
        let t = Torus3D::new([4, 4, 4]);
        let a = [0, 0, 0];
        let b = [2, 0, 0];
        let slow = Slow(t.route(a, b)[1]);
        let d = t.route_segs_avoiding(a, b, &slow).unwrap();
        assert!((d.min_bw_factor(&t, &slow) - 0.25).abs() < 1e-12);
        assert!((d.min_bw_factor(&t, &AllHealthy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segments_chain_through_dimensions() {
        let t = Torus3D::new([6, 6, 6]);
        let segs = t.route_segs([5, 0, 3], [1, 4, 3]);
        let parts = segs.segments(&t);
        // X enters at the origin, Y where X arrived, Z where Y arrived.
        assert_eq!(parts[0], ([5, 0, 3], 2)); // 5 -> 1 wraps +2
        assert_eq!(parts[1], ([1, 0, 3], -2)); // 0 -> 4 is -2 around
        assert_eq!(parts[2], ([1, 4, 3], 0));
    }
}
