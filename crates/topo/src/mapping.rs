//! Rank-to-node mappings.
//!
//! BG/P assigns MPI ranks to torus coordinates by a four-symbol ordering
//! over `{X, Y, Z, T}` where `T` is the task slot within a node (§I.A):
//! the **leftmost symbol varies fastest**. `XYZT` walks the X ring first
//! (one task per node), `TXYZ` fills all task slots of a node before
//! moving in X, and so on. Figure 2(c,d) of the paper compares eight of
//! these orderings for the HALO exchange; this module implements all 12
//! predefined mappings (the T-last and T-first families plus the remaining
//! permutations the paper lists).

use crate::torus::{Coord, Torus3D};
use serde::{Deserialize, Serialize};

/// One of the mapping symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Sym {
    X,
    Y,
    Z,
    T,
}

/// A rank-to-(node, task-slot) ordering such as `TXYZ` or `XYZT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    order: [Sym; 4],
}

impl Mapping {
    /// Parse an ordering like `"TXYZ"`. Returns `None` unless the string
    /// is a permutation of the four symbols.
    pub fn parse(s: &str) -> Option<Mapping> {
        let chars: Vec<char> = s.trim().to_ascii_uppercase().chars().collect();
        if chars.len() != 4 {
            return None;
        }
        let mut order = [Sym::X; 4];
        let mut seen = [false; 4];
        for (i, c) in chars.iter().enumerate() {
            let (sym, j) = match c {
                'X' => (Sym::X, 0),
                'Y' => (Sym::Y, 1),
                'Z' => (Sym::Z, 2),
                'T' => (Sym::T, 3),
                _ => return None,
            };
            if seen[j] {
                return None;
            }
            seen[j] = true;
            order[i] = sym;
        }
        Some(Mapping { order })
    }

    /// The default SMP/VN orderings from the paper.
    pub fn xyzt() -> Mapping {
        Mapping::parse("XYZT").unwrap()
    }

    /// The default VN-mode ordering (tasks 0–3 on the first node, …).
    pub fn txyz() -> Mapping {
        Mapping::parse("TXYZ").unwrap()
    }

    /// The eight orderings compared in Figure 2(c,d).
    pub fn fig2_set() -> Vec<(String, Mapping)> {
        ["TXYZ", "TYXZ", "TZXY", "TZYX", "XYZT", "YXZT", "ZXYT", "ZYXT"]
            .iter()
            .map(|s| (s.to_string(), Mapping::parse(s).unwrap()))
            .collect()
    }

    /// All 12 predefined mappings from §I.A (T-last family, T-first
    /// family).
    pub fn predefined() -> Vec<(String, Mapping)> {
        [
            "XYZT", "XZYT", "YXZT", "YZXT", "ZXYT", "ZYXT", "TXYZ", "TXZY", "TYXZ", "TYZX",
            "TZXY", "TZYX",
        ]
        .iter()
        .map(|s| (s.to_string(), Mapping::parse(s).unwrap()))
        .collect()
    }

    /// Render back to the four-letter name.
    pub fn name(&self) -> String {
        self.order
            .iter()
            .map(|s| match s {
                Sym::X => 'X',
                Sym::Y => 'Y',
                Sym::Z => 'Z',
                Sym::T => 'T',
            })
            .collect()
    }

    /// Map `rank` to a torus coordinate and task slot, given the torus
    /// shape and `tasks_per_node`. Ranks beyond the partition capacity
    /// wrap (callers should size partitions to the job).
    pub fn place(&self, rank: usize, torus: &Torus3D, tasks_per_node: usize) -> (Coord, usize) {
        debug_assert!(tasks_per_node >= 1);
        let mut digits = [0usize; 4]; // x, y, z, t
        let mut r = rank;
        for sym in self.order {
            let (idx, radix) = match sym {
                Sym::X => (0, torus.dims[0]),
                Sym::Y => (1, torus.dims[1]),
                Sym::Z => (2, torus.dims[2]),
                Sym::T => (3, tasks_per_node),
            };
            digits[idx] = r % radix;
            r /= radix;
        }
        ([digits[0], digits[1], digits[2]], digits[3])
    }

    /// The inverse of [`Mapping::place`]: rank of `(coord, slot)`.
    pub fn rank_of(&self, coord: Coord, slot: usize, torus: &Torus3D, tasks_per_node: usize) -> usize {
        let mut rank = 0usize;
        let mut weight = 1usize;
        for sym in self.order {
            let (digit, radix) = match sym {
                Sym::X => (coord[0], torus.dims[0]),
                Sym::Y => (coord[1], torus.dims[1]),
                Sym::Z => (coord[2], torus.dims[2]),
                Sym::T => (slot, tasks_per_node),
            };
            rank += digit * weight;
            weight *= radix;
        }
        rank
    }
}

impl std::fmt::Display for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_permutations_only() {
        assert!(Mapping::parse("TXYZ").is_some());
        assert!(Mapping::parse("xyzt").is_some()); // case-insensitive
        assert!(Mapping::parse("XXYZ").is_none());
        assert!(Mapping::parse("XYZ").is_none());
        assert!(Mapping::parse("XYZW").is_none());
        assert!(Mapping::parse("XYZTT").is_none());
    }

    #[test]
    fn name_round_trips() {
        for (name, m) in Mapping::predefined() {
            assert_eq!(m.name(), name);
        }
    }

    /// §I.A: "TXYZ ordering assigns processes 0–3 to the first node,
    /// 4–7 to the second node (in the X direction)".
    #[test]
    fn txyz_fills_node_first() {
        let t = Torus3D::new([4, 4, 4]);
        let m = Mapping::txyz();
        for r in 0..4 {
            let (c, slot) = m.place(r, &t, 4);
            assert_eq!(c, [0, 0, 0]);
            assert_eq!(slot, r);
        }
        let (c, slot) = m.place(4, &t, 4);
        assert_eq!(c, [1, 0, 0]);
        assert_eq!(slot, 0);
    }

    /// §I.A: "XYZT … assigning one process to each node in the X direction
    /// of the torus, then the Y, then the Z, then returning to the first
    /// node".
    #[test]
    fn xyzt_walks_torus_first() {
        let t = Torus3D::new([4, 4, 4]);
        let m = Mapping::xyzt();
        let (c, slot) = m.place(1, &t, 4);
        assert_eq!((c, slot), ([1, 0, 0], 0));
        let (c, slot) = m.place(4, &t, 4);
        assert_eq!((c, slot), ([0, 1, 0], 0));
        let (c, slot) = m.place(64, &t, 4);
        assert_eq!((c, slot), ([0, 0, 0], 1)); // wrapped back, second slot
    }

    /// In SMP mode (1 task/node) XYZT and TXYZ coincide, as the paper notes.
    #[test]
    fn smp_mode_orderings_coincide() {
        let t = Torus3D::new([8, 8, 8]);
        for r in (0..512).step_by(37) {
            assert_eq!(Mapping::xyzt().place(r, &t, 1), Mapping::txyz().place(r, &t, 1));
        }
    }

    #[test]
    fn place_is_bijective_over_partition() {
        let t = Torus3D::new([4, 2, 3]);
        let tpn = 4;
        let total = t.nodes() * tpn;
        for (_, m) in Mapping::predefined() {
            let mut seen = vec![false; total];
            for r in 0..total {
                let (c, slot) = m.place(r, &t, tpn);
                let key = t.index(c) * tpn + slot;
                assert!(!seen[key], "mapping {m} collides at rank {r}");
                seen[key] = true;
            }
        }
    }

    #[test]
    fn rank_of_inverts_place() {
        let t = Torus3D::new([4, 6, 2]);
        let tpn = 2;
        for (_, m) in Mapping::fig2_set() {
            for r in 0..t.nodes() * tpn {
                let (c, slot) = m.place(r, &t, tpn);
                assert_eq!(m.rank_of(c, slot, &t, tpn), r);
            }
        }
    }

    #[test]
    fn fig2_set_is_eight() {
        assert_eq!(Mapping::fig2_set().len(), 8);
        assert_eq!(Mapping::predefined().len(), 12);
    }

    /// Different orderings place mid-range ranks differently (that's the
    /// whole point of Fig 2c/d).
    #[test]
    fn orderings_differ() {
        let t = Torus3D::new([8, 8, 8]);
        let a = Mapping::parse("TXYZ").unwrap().place(100, &t, 4);
        let b = Mapping::parse("TZYX").unwrap().place(100, &t, 4);
        assert_ne!(a, b);
    }
}
