//! Property tests for topology invariants: routing is shortest-path and
//! well-chained, mappings are bijections, grids invert, partitions
//! factorize.

use hpcsim_topo::{alloc_torus_dims, torus_dims, Grid2D, Grid3D, Mapping, Placement, Torus3D};
use proptest::prelude::*;

fn torus_strategy() -> impl Strategy<Value = Torus3D> {
    (1usize..10, 1usize..10, 1usize..10).prop_map(|(x, y, z)| Torus3D::new([x, y, z]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Route length equals hop distance (routes are shortest paths) and
    /// hop distance is a metric: symmetric, zero iff equal.
    #[test]
    fn routes_are_shortest_paths(t in torus_strategy(), a_seed: usize, b_seed: usize) {
        let a = t.coord(a_seed % t.nodes());
        let b = t.coord(b_seed % t.nodes());
        prop_assert_eq!(t.route(a, b).len(), t.hops(a, b));
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert_eq!(t.hops(a, b) == 0, a == b);
    }

    /// The compact segment route yields the exact same link sequence as
    /// the materialized oracle `route()` — same links, same order — for
    /// random torus shapes, including even rings whose antipodal pairs
    /// exercise the tie-break, and rings of length 1 and 2.
    #[test]
    fn route_segs_equals_route(t in torus_strategy(), a_seed: usize, b_seed: usize) {
        let a = t.coord(a_seed % t.nodes());
        let b = t.coord(b_seed % t.nodes());
        let segs = t.route_segs(a, b);
        prop_assert_eq!(segs.hops(), t.hops(a, b));
        let iterated: Vec<_> = segs.links(&t).collect();
        prop_assert_eq!(iterated, t.route(a, b));
        prop_assert_eq!(segs.links(&t).len(), segs.hops());
    }

    /// Triangle inequality for torus hops.
    #[test]
    fn hops_triangle_inequality(t in torus_strategy(), s1: usize, s2: usize, s3: usize) {
        let a = t.coord(s1 % t.nodes());
        let b = t.coord(s2 % t.nodes());
        let c = t.coord(s3 % t.nodes());
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
    }

    /// Routes chain: each link leaves the node the previous link reached.
    #[test]
    fn routes_chain(t in torus_strategy(), s1: usize, s2: usize) {
        let a = t.coord(s1 % t.nodes());
        let b = t.coord(s2 % t.nodes());
        let route = t.route(a, b);
        let mut cur = t.index(a);
        for l in &route {
            prop_assert_eq!(l.node(), cur);
            let c = t.coord(cur);
            let dim = l.direction_index() / 2;
            let step: isize = if l.direction_index() % 2 == 0 { 1 } else { -1 };
            let n = t.dims[dim] as isize;
            let mut c2 = c;
            c2[dim] = ((c[dim] as isize + step).rem_euclid(n)) as usize;
            cur = t.index(c2);
        }
        prop_assert_eq!(cur, t.index(b));
    }

    /// Every predefined mapping is a bijection from ranks onto
    /// (node, slot) pairs.
    #[test]
    fn mappings_bijective(
        t in torus_strategy(),
        tpn in 1usize..5,
        mapping_idx in 0usize..12
    ) {
        let (_, mapping) = Mapping::predefined().swap_remove(mapping_idx);
        let total = t.nodes() * tpn;
        let mut seen = vec![false; total];
        for r in 0..total {
            let (coord, slot) = mapping.place(r, &t, tpn);
            let key = t.index(coord) * tpn + slot;
            prop_assert!(!seen[key], "collision at rank {r}");
            seen[key] = true;
            prop_assert_eq!(mapping.rank_of(coord, slot, &t, tpn), r);
        }
    }

    /// Partition factorizations multiply back exactly and are sorted.
    #[test]
    fn torus_dims_factorize(n in 1usize..5000) {
        let d = torus_dims(n);
        prop_assert_eq!(d[0] * d[1] * d[2], n);
        prop_assert!(d[0] <= d[1] && d[1] <= d[2]);
    }

    /// Physical allocations hold the job with bounded padding and avoid
    /// degenerate aspect ratios for non-tiny counts.
    #[test]
    fn alloc_dims_bounded(n in 1usize..5000) {
        let d = alloc_torus_dims(n);
        let v = d[0] * d[1] * d[2];
        prop_assert!(v >= n, "{d:?} too small for {n}");
        prop_assert!(v <= n + n / 4 + 2, "{d:?} overpadded for {n}");
        if n >= 64 {
            let cube = (n as f64).cbrt();
            prop_assert!((d[2] as f64) < cube * 8.0, "{d:?} too skewed for {n}");
        }
    }

    /// Placement yields exactly job_nodes distinct machine nodes inside
    /// the placement torus, deterministically per seed.
    #[test]
    fn placement_valid(job in 1usize..300, spread in 1.0f64..3.0, seed: u64) {
        let p = Placement::Fragmented { spread, seed };
        let (t, nodes) = p.place(job);
        prop_assert_eq!(nodes.len(), job);
        let mut uniq = nodes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), job, "duplicate placement");
        prop_assert!(nodes.iter().all(|&n| n < t.nodes()));
        let (_, nodes2) = p.place(job);
        prop_assert_eq!(nodes, nodes2);
    }

    /// 2-D grid neighbours are inverse pairs and stay in range.
    #[test]
    fn grid2d_neighbors_inverse(rows in 1usize..40, cols in 1usize..40, r_seed: usize) {
        let g = Grid2D::new(rows, cols);
        let rank = r_seed % g.size();
        prop_assert_eq!(g.south(g.north(rank)), rank);
        prop_assert_eq!(g.north(g.south(rank)), rank);
        prop_assert_eq!(g.east(g.west(rank)), rank);
        prop_assert_eq!(g.west(g.east(rank)), rank);
        prop_assert!(g.north(rank) < g.size());
    }

    /// near_square factorizations are exact and as square as claimed.
    #[test]
    fn near_square_exact(p in 1usize..10_000) {
        let g = Grid2D::near_square(p);
        prop_assert_eq!(g.rows * g.cols, p);
        prop_assert!(g.rows <= g.cols);
    }

    /// 3-D grid: rank/pos round trip and face neighbours stay in range.
    #[test]
    fn grid3d_roundtrip(x in 1usize..8, y in 1usize..8, z in 1usize..8, seed: usize) {
        let g = Grid3D::new([x, y, z]);
        let rank = seed % g.size();
        prop_assert_eq!(g.rank(g.pos(rank)), rank);
        for nb in g.face_neighbors(rank) {
            prop_assert!(nb < g.size());
        }
    }
}

mod detour {
    use hpcsim_topo::{AllHealthy, LinkHealth, LinkId, Torus3D};
    use proptest::prelude::*;

    fn torus_strategy() -> impl Strategy<Value = Torus3D> {
        (1usize..10, 1usize..10, 1usize..10).prop_map(|(x, y, z)| Torus3D::new([x, y, z]))
    }

    /// One dead link, derived deterministically from a seed.
    struct OneDead(LinkId);

    impl LinkHealth for OneDead {
        fn is_dead(&self, link: LinkId) -> bool {
            link == self.0
        }

        fn bw_factor(&self, _link: LinkId) -> f64 {
            1.0
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// On a fault-free topology the detour router IS the legacy
        /// dimension-ordered router: a single direct leg whose link
        /// sequence equals the materialized `route()` oracle.
        #[test]
        fn detour_matches_oracle_when_fault_free(
            t in torus_strategy(), a_seed: usize, b_seed: usize
        ) {
            let a = t.coord(a_seed % t.nodes());
            let b = t.coord(b_seed % t.nodes());
            let d = t.route_segs_avoiding(a, b, &AllHealthy).expect("healthy torus routes");
            prop_assert!(d.is_direct());
            prop_assert_eq!(&d.legs()[0], &t.route_segs(a, b));
            let links: Vec<_> = d.links(&t).collect();
            prop_assert_eq!(links, t.route(a, b));
        }

        /// With one dead link, any returned detour avoids it, chains from
        /// source to destination, and never shortcuts below the metric.
        #[test]
        fn detour_avoids_dead_and_terminates(
            t in torus_strategy(), a_seed: usize, b_seed: usize, dead_seed: usize
        ) {
            let a = t.coord(a_seed % t.nodes());
            let b = t.coord(b_seed % t.nodes());
            let health = OneDead(LinkId(dead_seed % t.links()));
            if let Some(d) = t.route_segs_avoiding(a, b, &health) {
                prop_assert!(d.hops() >= t.hops(a, b));
                let mut cur = t.index(a);
                for l in d.links(&t) {
                    prop_assert!(!health.is_dead(l), "detour crossed the dead link");
                    prop_assert_eq!(l.node(), cur, "detour chain break");
                    let c = t.coord(cur);
                    let dim = l.direction_index() / 2;
                    let step: isize = if l.direction_index() % 2 == 0 { 1 } else { -1 };
                    let n = t.dims[dim] as isize;
                    let mut c2 = c;
                    c2[dim] = ((c[dim] as isize + step).rem_euclid(n)) as usize;
                    cur = t.index(c2);
                }
                prop_assert_eq!(cur, t.index(b), "detour must end at destination");
            }
        }
    }
}
