//! HALO mapping study: when does the rank-to-torus mapping matter?
//!
//! Reproduces the logic of the paper's Figure 2(c,d): run the Wallcraft
//! HALO exchange under all eight predefined mappings at a small and a
//! large halo size. The mapping is irrelevant while exchanges are
//! latency-dominated, and worth real money once they are bandwidth-bound.
//!
//! Every (mapping, size) point is a [`ScenarioSpec`] evaluated through
//! the scenario cache: the sixteen queries share just two recorded
//! traces (the exchange pattern depends on the grid and halo size, not
//! the mapping), and asking any of them again is a tier-1 lookup.
//!
//! ```text
//! cargo run --release --example halo_mapping
//! ```

use bgp_eval::cache::{evaluate, ScenarioSpec};
use bgp_eval::hpcc::{HaloConfig, HaloProtocol};
use bgp_eval::machine::registry::bluegene_p;
use bgp_eval::machine::ExecMode;
use bgp_eval::topo::{Grid2D, Mapping};

fn main() {
    let machine = bluegene_p();
    let ranks = 1024; // 32x32 virtual grid, VN mode -> 256 nodes
    let grid = Grid2D::near_square(ranks);
    println!(
        "HALO exchange on BG/P, {} ranks as {}x{} grid (VN mode)\n",
        ranks, grid.rows, grid.cols
    );
    println!("{:>8} {:>14} {:>14}", "mapping", "8 words (us)", "32768 words (us)");

    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for (name, mapping) in Mapping::fig2_set() {
        let run = |words: u64| {
            let cfg = HaloConfig { grid, words, protocol: HaloProtocol::IrecvIsend, reps: 2 };
            let spec = ScenarioSpec::halo(&machine, ExecMode::Vn, mapping, cfg);
            evaluate(&spec).expect("pristine halo scenarios evaluate")[0] * 1e6
        };
        results.push((name, run(8), run(32_768)));
    }
    for (name, small, large) in &results {
        println!("{name:>8} {small:>14.1} {large:>14.1}");
    }

    let spread = |sel: &dyn Fn(&(String, f64, f64)) -> f64| {
        let min = results.iter().map(sel).fold(f64::INFINITY, f64::min);
        let max = results.iter().map(sel).fold(0.0f64, f64::max);
        max / min
    };
    println!(
        "\nworst/best ratio: {:.2}x at 8 words, {:.2}x at 32768 words",
        spread(&|r| r.1),
        spread(&|r| r.2)
    );
    let s = bgp_eval::cache::global().stats();
    println!(
        "scenario cache: {} evaluations from {} trace recordings ({} trace hits)",
        s.result_misses, s.trace_misses, s.trace_hits
    );
    println!(
        "-> \"optimizing with respect to process/processor mapping is likely \
         unimportant when communication is latency dominated, but may be \
         important when communication is bandwidth limited.\" (paper, §II.B.1)"
    );
}
