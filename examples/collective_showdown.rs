//! Collective showdown: the hardware tree vs software algorithms.
//!
//! Sweeps MPI_Allreduce and MPI_Bcast across payloads and scales on both
//! machines — Figure 3's full story including the BG/P single- vs
//! double-precision split (the tree ALU offloads doubles, singles fall
//! back to software on the torus).
//!
//! ```text
//! cargo run --release --example collective_showdown
//! ```

use bgp_eval::hpcc::{imb_allreduce, imb_bcast};
use bgp_eval::machine::registry::{bluegene_p, xt4_qc};
use bgp_eval::machine::ExecMode;
use bgp_eval::net::DType;

fn main() {
    let bgp = bluegene_p();
    let xt = xt4_qc();
    let ranks = 2048;

    println!("MPI_Allreduce latency (us) at {ranks} processes, VN mode\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>9}",
        "bytes", "BG/P double", "BG/P single", "XT4/QC double", "BGP win"
    );
    for bytes in [8u64, 512, 32 * 1024, 1 << 20] {
        let b_dp = imb_allreduce(&bgp, ExecMode::Vn, ranks, bytes, DType::F64).usec;
        let b_sp = imb_allreduce(&bgp, ExecMode::Vn, ranks, bytes, DType::F32).usec;
        let x_dp = imb_allreduce(&xt, ExecMode::Vn, ranks, bytes, DType::F64).usec;
        println!("{bytes:>10} {b_dp:>14.1} {b_sp:>14.1} {x_dp:>14.1} {:>8.1}x", x_dp / b_dp);
    }

    println!("\nMPI_Bcast latency (us), 32 KiB payload, across scales\n");
    println!("{:>10} {:>12} {:>12} {:>9}", "processes", "BG/P", "XT4/QC", "BGP win");
    for p in [128usize, 512, 2048, 8192] {
        let b = imb_bcast(&bgp, ExecMode::Vn, p, 32 * 1024).usec;
        let x = imb_bcast(&xt, ExecMode::Vn, p, 32 * 1024).usec;
        println!("{p:>10} {b:>12.1} {x:>12.1} {:>8.1}x", x / b);
    }
    println!(
        "\n-> the dedicated tree keeps BG/P's collectives near-flat in both \
         payload and scale; the XT pays log2(p) software stages every time. \
         And on BG/P, use DOUBLE precision reductions (§II.B.2)."
    );
}
