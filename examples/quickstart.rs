//! Quickstart: build a BlueGene/P, run simulated HPL across scales, and
//! read off performance, efficiency and power — the §II.C story in ~40
//! lines of user code.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bgp_eval::hpcc::{hpl_problem_size, hpl_run, HplConfig};
use bgp_eval::machine::registry::{bluegene_p, xt4_qc};
use bgp_eval::machine::ExecMode;
use bgp_eval::power::{PowerModel, UTIL_HPL};
use bgp_eval::topo::Grid2D;

fn main() {
    println!("Simulated HPL, BG/P vs XT4/QC (VN mode, 80% of memory)\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>8} {:>10}",
        "cores", "machine", "N", "GFlop/s", "eff", "MFlops/W"
    );
    for machine in [bluegene_p(), xt4_qc()] {
        let pm = PowerModel::new(machine.clone());
        for cores in [256usize, 1024, 4096] {
            let n = hpl_problem_size(&machine, cores, ExecMode::Vn, 0.8);
            let cfg = HplConfig { n, nb: 144, grid: Grid2D::near_square(cores), samples: 6 };
            let r = hpl_run(&machine, ExecMode::Vn, &cfg);
            let mfw = pm.mflops_per_watt(r.gflops * 1e9, cores as u64, UTIL_HPL);
            println!(
                "{:>8} {:>10} {:>12} {:>10.0} {:>7.1}% {:>10.1}",
                cores,
                machine.id.label(),
                n,
                r.gflops,
                r.efficiency * 100.0,
                mfw
            );
        }
    }
    println!(
        "\nThe shape to notice: the XT4 sustains ~2.5x the GFlop/s per core \
         (clock), while BG/P delivers ~2.7x the MFlops per watt — the \
         paper's headline trade-off."
    );
}
