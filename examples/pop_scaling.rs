//! POP tenth-degree scaling and the science-per-watt story.
//!
//! Runs the POP proxy on BG/P and the XT4 across scales, printing the
//! phase breakdown (Fig 4) and then the Table 3 economics: at equal core
//! counts the XT4 wins on time-to-solution and BG/P wins hugely on
//! power; at equal *throughput* the power gap nearly closes.
//!
//! ```text
//! cargo run --release --example pop_scaling
//! ```

use bgp_eval::apps::{pop_run, PopConfig};
use bgp_eval::machine::registry::{bluegene_p, xt4_dc};
use bgp_eval::machine::ExecMode;
use bgp_eval::power::{PowerModel, UTIL_SCIENCE};

fn main() {
    let cfg = PopConfig::default();
    println!("POP 0.1-degree proxy (VN mode, ChronGear solver)\n");
    println!(
        "{:>8} {:>8} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "machine", "procs", "SYD", "baroclinic", "barotropic", "imbalance", "kW"
    );
    for machine in [bluegene_p(), xt4_dc()] {
        let pm = PowerModel::new(machine.clone());
        for procs in [1024usize, 2048, 4096] {
            let r = pop_run(&machine, ExecMode::Vn, procs, 1, &cfg);
            println!(
                "{:>8} {:>8} {:>8.2} {:>10.1}s {:>10.1}s {:>10.1}s {:>10.1}",
                machine.id.label(),
                procs,
                r.syd,
                r.baroclinic_s,
                r.barotropic_s,
                r.barrier_s,
                pm.aggregate_w(procs as u64, UTIL_SCIENCE) / 1e3,
            );
        }
    }

    // the Table 3 argument at a fixed throughput target
    let target_syd = 1.5;
    println!("\nIso-throughput comparison (target {target_syd} simulated years/day):");
    for machine in [bluegene_p(), xt4_dc()] {
        let pm = PowerModel::new(machine.clone());
        let mut procs = 256;
        while procs <= 16384 && pop_run(&machine, ExecMode::Vn, procs, 1, &cfg).syd < target_syd {
            procs *= 2;
        }
        let kw = pm.aggregate_w(procs as u64, UTIL_SCIENCE) / 1e3;
        println!(
            "  {:>7}: ~{procs} cores, {kw:.1} kW aggregate",
            machine.id.label()
        );
    }
    println!(
        "\n-> per core BG/P draws ~1/6th the power, but it needs ~5x the cores \
         for the same science throughput; the aggregate-power gap shrinks to \
         tens of percent (paper, §IV)."
    );
}
