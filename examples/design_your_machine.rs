//! Design-your-own-machine: the simulator as a design-space tool.
//!
//! The paper evaluates two fixed designs. With the models in hand we can
//! ask counterfactuals: what if BG/P had the XT's clock? What if the XT
//! had a collective tree? This example builds hypothetical machines and
//! runs them through HPL, the Allreduce sweep, and POP — each question
//! phrased as a [`ScenarioSpec`] and answered through the scenario
//! cache, so re-asking any of them (here or anywhere else in the
//! process) is a lookup, not a simulation.
//!
//! ```text
//! cargo run --release --example design_your_machine
//! ```

use bgp_eval::cache::{evaluate, ScenarioSpec};
use bgp_eval::hpcc::{hpl_problem_size, HplConfig};
use bgp_eval::machine::registry::{bluegene_p, xt4_qc};
use bgp_eval::machine::{ExecMode, MachineSpec};
use bgp_eval::net::DType;
use bgp_eval::power::{PowerModel, UTIL_SCIENCE};
use bgp_eval::topo::Grid2D;

/// BG/P with a 1.7 GHz core (double clock, ~double core power).
fn fast_bgp() -> MachineSpec {
    let mut m = bluegene_p();
    m.core.clock_hz *= 2.0;
    m.core.name = "PPC450 @ 1700 MHz (hypothetical)";
    m.power.core_dyn_w *= 2.2;
    m.power.core_idle_w *= 1.5;
    m
}

/// XT4/QC with a BlueGene-style collective tree bolted on.
fn xt_with_tree() -> MachineSpec {
    let mut m = xt4_qc();
    m.nic.tree_bw = Some(1700e6);
    m.nic.has_barrier_network = true;
    m
}

fn report(machine: &MachineSpec, tag: &str) {
    let cores = 1024usize;
    let n = hpl_problem_size(machine, cores, ExecMode::Vn, 0.8);
    // three what-if questions, each a content-addressed scenario
    let hpl_spec = ScenarioSpec::hpl(
        machine,
        ExecMode::Vn,
        HplConfig { n, nb: 144, grid: Grid2D::near_square(cores), samples: 6 },
    );
    let ar_spec = ScenarioSpec::imb_allreduce(machine, ExecMode::Vn, cores, 32 * 1024, DType::F64);
    let pop_spec =
        ScenarioSpec::pop(machine, ExecMode::Vn, cores, 1, bgp_eval::apps::PopConfig::default());
    // result-vector layouts: hpl = [seconds, gflops, efficiency],
    // imb-allreduce = [usec], pop = [syd, ...]
    let hpl_gflops = evaluate(&hpl_spec).expect("hpl evaluates")[1];
    let ar_usec = evaluate(&ar_spec).expect("allreduce evaluates")[0];
    let pop_syd = evaluate(&pop_spec).expect("pop evaluates")[0];
    let pm = PowerModel::new(machine.clone());
    let kw = pm.aggregate_w(cores as u64, UTIL_SCIENCE) / 1e3;
    println!(
        "{tag:>24}  HPL {hpl_gflops:>7.0} GF  allreduce {ar_usec:>7.1} us  \
         POP {pop_syd:>5.2} SYD  {kw:>6.1} kW"
    );
}

fn main() {
    println!("Design-space exploration at 1024 cores, VN mode:\n");
    report(&bluegene_p(), "BG/P (baseline)");
    report(&fast_bgp(), "BG/P @ 1.7 GHz");
    report(&xt4_qc(), "XT4/QC (baseline)");
    report(&xt_with_tree(), "XT4/QC + tree network");
    let s = bgp_eval::cache::global().stats();
    println!(
        "\n-> doubling BG/P's clock buys HPL and POP throughput at a power \
         cost; giving the XT a tree collapses its Allreduce latency, which \
         is precisely what POP's barotropic solver wants at scale."
    );
    println!(
        "   (scenario cache: {} evaluations, {} hits — re-run any question \
         above and it becomes a lookup)",
        s.result_misses, s.result_hits
    );
}
